"""Extension — concurrent kernel execution on the virtual GPU.

Section III of the paper: "SKE is not necessarily limited to a single
kernel but can also be extended to support concurrent kernel execution";
the authors leave it as future work.  Here it is: the virtual GPU in
``concurrent=True`` mode launches kernels like independent CUDA streams,
and the per-GPU CTA dispatcher interleaves their CTAs onto free SM slots.

The win shows exactly where the Fermi whitepaper said it would: kernels
that individually underfill the machine (few CTAs, e.g. CG.S-sized grids)
overlap; big kernels that saturate the SMs see no benefit (the SMs are the
conserved resource).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..config import SystemConfig
from ..system.builder import MultiGPUSystem
from ..core.virtual_gpu import VirtualGPU
from ..system.configs import get_spec
from ..workloads.suite import get_workload
from .common import ExperimentResult

#: (workload, scale) pairs: small grids that underfill 4 GPUs, and one
#: large saturating pair as the control.
DEFAULT_PAIRS: Sequence[Tuple[str, float, str, float]] = (
    ("CG.S", 1.0, "FT.S", 1.0),
    ("CG.S", 1.0, "CG.S", 1.0),
    ("BP", 1.0, "KMN", 1.0),
)


def _makespan(pair, cfg: SystemConfig, concurrent: bool) -> int:
    name_a, scale_a, name_b, scale_b = pair
    system = MultiGPUSystem(get_spec("UMN"), cfg)
    system.install_page_table()
    vgpu = VirtualGPU(system.sim, system.gpus, concurrent=concurrent)
    kernels = (
        get_workload(name_a, scale_a).kernels + get_workload(name_b, scale_b).kernels
    )
    finished = []
    remaining = {"count": len(kernels)}

    def one_done() -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            finished.append(system.sim.now)

    for kernel in kernels:
        vgpu.launch(kernel, on_done=one_done)
    system.sim.run()
    assert finished, "kernels did not complete"
    return finished[0]


def run(
    pairs: Sequence[Tuple[str, float, str, float]] = DEFAULT_PAIRS,
    cfg: Optional[SystemConfig] = None,
) -> ExperimentResult:
    cfg = cfg or SystemConfig()
    result = ExperimentResult(
        "Ext: concurrent",
        "Sequential vs concurrent kernel execution (extension; Section III "
        "future work)",
        paper_note="the paper defers concurrent kernel execution to future work",
    )
    for pair in pairs:
        seq = _makespan(pair, cfg, concurrent=False)
        con = _makespan(pair, cfg, concurrent=True)
        result.add(
            kernels=f"{pair[0]}+{pair[2]}",
            sequential_us=seq / 1e6,
            concurrent_us=con / 1e6,
            overlap_speedup=round(seq / con, 2),
        )
    result.note(
        "small grids overlap and speed up; SM-saturating kernel pairs are "
        "bound by total compute and see ~1.0x"
    )
    return result
