"""Experiment harnesses — one module per table/figure of the paper.

Each module exposes ``run(...) -> ExperimentResult`` whose rows are the
series the paper reports; ``ExperimentResult.render()`` prints them with
the paper's claim alongside.  The registry below maps experiment ids to
their runners (used by the CLI and the benchmark suite).
"""

from typing import Callable, Dict

from . import (
    ext_concurrent,
    ext_flit_validation,
    ext_latency_load,
    ext_mapping,
    ext_pcn,
    ext_sched,
    ext_sensitivity,
    fig07_remote_access,
    fig10_traffic,
    fig12_channels,
    fig14_organizations,
    fig15_adaptive,
    fig16_fig17_topologies,
    fig18_overlay,
    fig19_scaling,
    sec3b_scheduler,
)
from .common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig7": fig07_remote_access.run,
    "fig10": fig10_traffic.run,
    "fig12": fig12_channels.run,
    "fig14": fig14_organizations.run,
    "fig15": fig15_adaptive.run,
    "fig16": fig16_fig17_topologies.run,
    "fig17": fig16_fig17_topologies.run,  # energy shares the Fig. 16 sweep
    "fig18": fig18_overlay.run,
    "fig19": fig19_scaling.run,
    "sec3b": sec3b_scheduler.run,
    # Extensions beyond the paper (DESIGN.md section 7a).
    "ext-mapping": ext_mapping.run,
    "ext-concurrent": ext_concurrent.run,
    "ext-latency-load": ext_latency_load.run,
    "ext-pcn": ext_pcn.run,
    "ext-flit": ext_flit_validation.run,
    "ext-sensitivity": ext_sensitivity.run,
    "ext-sched": ext_sched.run,
}

__all__ = ["EXPERIMENTS", "ExperimentResult"]
