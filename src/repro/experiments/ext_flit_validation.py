"""Extension — validating the packet-level model against the flit engine.

The reproduction's default network is packet-level (DESIGN.md section 2).
This experiment cross-checks it against the flit-level wormhole/VC/credit
engine (the fidelity class of the authors' NoC simulator [51]) two ways:

1. **latency-load curves** on uniform-random traffic: the models should
   agree at low load and diverge only near saturation, where wormhole
   backpressure throttles earlier than the packet model's open queues;
2. **full-system spot check**: the Fig. 16 topology ordering must be the
   same under both engines.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Sequence

from ..config import NetworkConfig, SystemConfig
from ..exec import SweepExecutor, default_executor
from ..network.flitnet import FlitNetwork
from ..network.network import MemoryNetwork
from ..network.packet import Packet, PacketKind, reset_packet_ids
from ..network.topologies import build_topology
from ..sim.engine import Simulator
from .common import ExperimentResult, job_for, run_jobs

LOADS = (0.1, 0.4, 0.8)


def _latency(model_cls, topology: str, load: float, packets: int, seed: int) -> float:
    reset_packet_ids()
    sim = Simulator()
    topo = build_topology(topology, num_gpus=4)
    net = model_cls(sim, topo, NetworkConfig())
    for r in range(topo.num_routers):
        net.set_router_handler(r, lambda p: None)
    rng = random.Random(seed)
    size = 144
    gpu_bytes_per_ps = 8 * 20.0 * (1 << 30) / 1e12
    interval = max(1, round(size / (gpu_bytes_per_ps * load)))
    for g in range(4):
        t = rng.randrange(interval)
        for _ in range(packets):
            dst = rng.randrange(topo.num_routers)
            packet = Packet(PacketKind.WRITE_REQ, f"gpu{g}", dst, size)
            sim.at(t, (lambda p=packet: net.send(p)))
            t += interval
    sim.run()
    return net.stats.avg_latency_ps / 1e3


def run(
    topology: str = "sfbfly",
    loads: Sequence[float] = LOADS,
    packets_per_gpu: int = 300,
    workloads: Sequence[str] = ("BP", "KMN"),
    scale: float = 0.25,
    cfg: Optional[SystemConfig] = None,
    seed: int = 9,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    cfg = cfg or SystemConfig()
    executor = executor or default_executor()
    result = ExperimentResult(
        "Ext: flit validation",
        "Packet-level vs flit-level network engines",
        paper_note=(
            "the authors used a cycle-accurate NoC simulator [51]; our "
            "default is packet-level — this experiment bounds the error"
        ),
    )
    for load in loads:
        pkt = _latency(MemoryNetwork, topology, load, packets_per_gpu, seed)
        flit = _latency(FlitNetwork, topology, load, packets_per_gpu, seed)
        result.add(
            study="latency-load",
            point=f"{load:.0%} load",
            packet_ns=round(pkt, 1),
            flit_ns=round(flit, 1),
            ratio=round(flit / pkt, 2) if pkt else 0.0,
        )
    jobs = [
        job_for(
            "GMN",
            name,
            dataclasses.replace(cfg, network_model=model),
            scale=scale,
        )
        for name in workloads
        for model in ("packet", "flit")
    ]
    results = iter(run_jobs(jobs, executor, result))
    for name in workloads:
        pair = {model: next(results) for model in ("packet", "flit")}
        if any(r is None for r in pair.values()):
            continue  # failed point (keep-going); reported on result
        runtimes = {model: r.kernel_ps for model, r in pair.items()}
        result.add(
            study="full-system",
            point=name,
            packet_ns=round(runtimes["packet"] / 1e3, 1),
            flit_ns=round(runtimes["flit"] / 1e3, 1),
            ratio=round(runtimes["flit"] / runtimes["packet"], 2),
        )
    result.note(
        "models agree at low load; near saturation wormhole backpressure "
        "raises latencies ~1.5-2x over the open-queue packet model — a "
        "uniform factor that shifts absolute runtimes, not orderings"
    )
    return result
