"""Fig. 14 — runtime breakdown across the Table III architectures.

For every Table II workload, run all seven architectures and report the
kernel / memcpy / host breakdown.  The paper's headline claims:

- UMN is fastest everywhere (8.5x lower total runtime than PCIe overall);
- GMN cuts kernel time up to 8.8x (BP) and 3.5x on average vs PCIe;
- CMN / CMN-ZC cut total runtime 1.8x / 2.2x vs PCIe;
- GMN-ZC equals PCIe-ZC (the GPU network is never touched);
- for 3DFD, BP, SCAN memcpy exceeds kernel time, so zero-copy wins there.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..config import SystemConfig
from ..exec import SweepExecutor, default_executor
from ..system.configs import TABLE_III
from ..system.metrics import RunResult, geometric_mean
from ..workloads.suite import WORKLOAD_NAMES
from .common import ExperimentResult, job_for, run_jobs

ARCHS = list(TABLE_III)


def run(
    scale: float = 0.25,
    workloads: Optional[Sequence[str]] = None,
    cfg: Optional[SystemConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    cfg = cfg or SystemConfig()
    executor = executor or default_executor()
    workloads = list(workloads or WORKLOAD_NAMES)
    result = ExperimentResult(
        "Fig. 14",
        "Runtime breakdown per multi-GPU architecture",
        paper_note=(
            "UMN fastest (8.5x vs PCIe overall); GMN kernel up to 8.8x (BP), "
            "3.5x avg; CMN/CMN-ZC 1.8x/2.2x; GMN-ZC == PCIe-ZC"
        ),
    )
    jobs = [
        job_for(arch, name, cfg, scale=scale)
        for name in workloads
        for arch in ARCHS
    ]
    by_arch: Dict[str, Dict[str, RunResult]] = {a: {} for a in ARCHS}
    for job, r in zip(jobs, run_jobs(jobs, executor, result)):
        if r is None:
            continue  # failed point (keep-going); reported on result
        name, arch = job.workload.name, job.spec.name
        by_arch[arch][name] = r
        result.add(
            workload=name,
            arch=arch,
            kernel_us=r.kernel_ps / 1e6,
            memcpy_us=r.memcpy_ps / 1e6,
            # Fig. 14 reports kernel + memcpy; host time is Fig. 18's
            # metric and is shown here for reference only.
            total_us=(r.kernel_ps + r.memcpy_ps) / 1e6,
            host_us=r.host_ps / 1e6,
        )

    if not result.complete:
        # Summary speedups need every (workload, arch) point; with holes
        # the per-point rows above are all that can be reported honestly.
        return result

    def _total(arch: str, w: str) -> int:
        r = by_arch[arch][w]
        return r.kernel_ps + r.memcpy_ps

    def geo_speedup(arch: str) -> float:
        return geometric_mean(
            [_total("PCIe", w) / _total(arch, w) for w in workloads]
        )

    result.note(f"UMN total-runtime speedup over PCIe (geomean): {geo_speedup('UMN'):.1f}x (paper: 8.5x)")
    result.note(f"CMN: {geo_speedup('CMN'):.1f}x, CMN-ZC: {geo_speedup('CMN-ZC'):.1f}x (paper: 1.8x / 2.2x)")
    kernel_speedups = [
        by_arch["PCIe"][w].kernel_ps / by_arch["GMN"][w].kernel_ps for w in workloads
    ]
    result.note(
        f"GMN kernel speedup vs PCIe: max {max(kernel_speedups):.1f}x, "
        f"geomean {geometric_mean(kernel_speedups):.1f}x (paper: 8.8x max, 3.5x avg)"
    )
    if "BP" in workloads:
        bp = by_arch["PCIe"]["BP"]
        result.note(
            f"BP memcpy/kernel ratio on PCIe: {bp.memcpy_ps / bp.kernel_ps:.2f} "
            "(paper: > 1, so zero-copy wins for BP/SCAN/3DFD)"
        )
    return result
