"""Fig. 7 — cost of remote memory access: PCIe vs the GPU memory network.

vectorAdd runs on a single GPU while its data is spread over 1, 2, or 4 GPU
memories.  On the PCIe system (Fig. 7(a), the paper measured real M2050s)
performance collapses by up to 11.7x; on the GMN (Fig. 7(b), simulated)
distributing data *helps* at 50% remote thanks to the added memory
parallelism, and saturates by 75% when the GPU channels are the limit.

Calibration: the Fig. 7(b) run lowers the per-vault service rate
(``vault_bus_bytes_per_cycle=2``) so that the all-local case is bound by
DRAM service rather than by the GPU channels, the regime the paper's
flit-level simulation exposes (see DESIGN.md section 8); Fig. 7(a) uses the
default configuration.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..config import SystemConfig
from ..exec import SweepExecutor, WorkloadRef, default_executor
from .common import ExperimentResult, job_for, run_jobs

#: (label, per-cluster page weights) for the distribution sweep.
DISTRIBUTIONS = [
    ("1 GPU memory (all local)", [1.0, 0.0, 0.0, 0.0]),
    ("2 GPU memories (50% remote)", [0.5, 0.5, 0.0, 0.0]),
    ("4 GPU memories (75% remote)", [0.25, 0.25, 0.25, 0.25]),
]


def run(
    num_ctas: int = 96,
    lines_per_cta: int = 8,
    cfg: Optional[SystemConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    cfg = cfg or SystemConfig()
    executor = executor or default_executor()
    result = ExperimentResult(
        "Fig. 7",
        "vectorAdd runtime vs data distribution (1 active GPU)",
        paper_note=(
            "PCIe degrades up to 11.7x with 4-way distribution; GMN improves "
            "at 50% remote and saturates at 75%"
        ),
    )
    workload = WorkloadRef(
        "vectoradd",
        factory="repro.workloads.vectoradd:make_vectoradd",
        kwargs=(("num_ctas", num_ctas), ("lines_per_cta", lines_per_cta)),
    )

    gmn_cfg = dataclasses.replace(
        cfg, hmc=dataclasses.replace(cfg.hmc, vault_bus_bytes_per_cycle=2)
    )
    systems = (("PCIe", cfg), ("GMN", gmn_cfg))
    jobs = [
        job_for(
            arch,
            workload,
            run_cfg,
            placement_policy="weighted",
            placement_clusters=(0, 1, 2, 3),
            placement_weights=tuple(weights),
            num_active_gpus=1,
        )
        for arch, run_cfg in systems
        for _label, weights in DISTRIBUTIONS
    ]
    results = iter(run_jobs(jobs, executor, result))
    for arch, _run_cfg in systems:
        baseline = None
        for label, _weights in DISTRIBUTIONS:
            r = next(results)
            if r is None:
                continue  # failed point (keep-going); reported on result
            if baseline is None:
                baseline = r.kernel_ps
            result.add(
                system=arch,
                distribution=label,
                kernel_us=r.kernel_ps / 1e6,
                normalized_runtime=r.kernel_ps / baseline,
                avg_net_latency_ns=r.avg_net_latency_ps / 1e3,
                avg_hops=round(r.avg_hops, 2),
            )
    if result.complete:
        pcie_rows = [r for r in result.rows if r["system"] == "PCIe"]
        result.note(
            "PCIe degradation at 4-way distribution: "
            f"{pcie_rows[-1]['normalized_runtime']:.1f}x (paper: 11.7x)"
        )
        gmn_rows = [r for r in result.rows if r["system"] == "GMN"]
        result.note(
            f"GMN at 50% remote runs at {gmn_rows[1]['normalized_runtime']:.2f}x "
            "of all-local (paper: < 1.0, i.e. faster)"
        )
    return result
