"""Extension — sensitivity of the headline conclusions to model constants.

A reproduction built on a simplified simulator owes the reader an answer to
"would the conclusions change if your constants are off?".  This experiment
perturbs the most influential modeling parameters — SerDes latency, channel
bandwidth, vault queue depth, PCIe latency — by 2x in each direction and
re-measures two headline quantities:

- the UMN total-runtime speedup over PCIe (Fig. 14's message), and
- the sFBFLY-vs-sMESH kernel-time ratio (Fig. 16's message).

Both must stay on the same side of 1.0 for every perturbation; the table
shows by how much they move.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..config import SystemConfig
from ..system.configs import get_spec
from ..system.run import run_workload
from ..workloads.suite import get_workload
from .common import ExperimentResult


def _umn_speedup(cfg: SystemConfig, workload, scale: float) -> float:
    pcie = run_workload(get_spec("PCIe"), get_workload(workload, scale), cfg=cfg)
    umn = run_workload(get_spec("UMN"), get_workload(workload, scale), cfg=cfg)
    return (pcie.kernel_ps + pcie.memcpy_ps) / (umn.kernel_ps + umn.memcpy_ps)


def _sfbfly_ratio(cfg: SystemConfig, workload, scale: float) -> float:
    mesh = run_workload(
        get_spec("GMN").with_(topology="smesh"), get_workload(workload, scale), cfg=cfg
    )
    sfb = run_workload(
        get_spec("GMN").with_(topology="sfbfly"), get_workload(workload, scale), cfg=cfg
    )
    return mesh.kernel_ps / sfb.kernel_ps


def _variants(base: SystemConfig):
    net = base.network
    yield "baseline", base
    for factor, tag in ((0.5, "x0.5"), (2.0, "x2")):
        yield f"serdes {tag}", dataclasses.replace(
            base, network=dataclasses.replace(net, serdes_ps=int(net.serdes_ps * factor))
        )
        yield f"channel bw {tag}", dataclasses.replace(
            base,
            network=dataclasses.replace(net, channel_gbps=net.channel_gbps * factor),
        )
        yield f"vault queue {tag}", dataclasses.replace(
            base,
            hmc=dataclasses.replace(
                base.hmc, vault_queue_entries=max(1, int(16 * factor))
            ),
        )
        yield f"pcie latency {tag}", dataclasses.replace(
            base, pcie=dataclasses.replace(base.pcie, latency_ps=int(base.pcie.latency_ps * factor))
        )


def run(
    workload: str = "BP",
    scale: float = 0.25,
    cfg: Optional[SystemConfig] = None,
) -> ExperimentResult:
    base = cfg or SystemConfig()
    result = ExperimentResult(
        "Ext: sensitivity",
        "Headline conclusions under 2x parameter perturbations",
        paper_note=(
            "robustness check: UMN > PCIe and sFBFLY > sMESH must survive "
            "every perturbation"
        ),
    )
    for label, variant in _variants(base):
        result.add(
            parameter=label,
            umn_speedup_vs_pcie=round(_umn_speedup(variant, workload, scale), 2),
            sfbfly_speedup_vs_smesh=round(_sfbfly_ratio(variant, workload, scale), 2),
        )
    baseline = result.rows[0]
    result.note(
        f"baseline: UMN {baseline['umn_speedup_vs_pcie']}x, "
        f"sFBFLY {baseline['sfbfly_speedup_vs_smesh']}x on {workload}"
    )
    flipped = [
        r["parameter"]
        for r in result.rows
        if r["umn_speedup_vs_pcie"] <= 1.0 or r["sfbfly_speedup_vs_smesh"] <= 1.0
    ]
    result.note(
        "no perturbation flips a conclusion" if not flipped
        else f"FLIPPED under: {flipped}"
    )
    return result
