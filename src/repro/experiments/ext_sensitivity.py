"""Extension — sensitivity of the headline conclusions to model constants.

A reproduction built on a simplified simulator owes the reader an answer to
"would the conclusions change if your constants are off?".  This experiment
perturbs the most influential modeling parameters — SerDes latency, channel
bandwidth, vault queue depth, PCIe latency — by 2x in each direction and
re-measures two headline quantities:

- the UMN total-runtime speedup over PCIe (Fig. 14's message), and
- the sFBFLY-vs-sMESH kernel-time ratio (Fig. 16's message).

Both must stay on the same side of 1.0 for every perturbation; the table
shows by how much they move.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..config import SystemConfig
from ..exec import SweepExecutor, WorkloadRef, default_executor
from ..system.configs import get_spec
from .common import ExperimentResult, job_for, run_jobs


def _specs():
    """The four runs every perturbation needs: Fig. 14's PCIe/UMN pair and
    Fig. 16's sMESH/sFBFLY pair."""
    return (
        get_spec("PCIe"),
        get_spec("UMN"),
        get_spec("GMN").with_(topology="smesh"),
        get_spec("GMN").with_(topology="sfbfly"),
    )


def _variants(base: SystemConfig):
    net = base.network
    yield "baseline", base
    for factor, tag in ((0.5, "x0.5"), (2.0, "x2")):
        yield f"serdes {tag}", dataclasses.replace(
            base, network=dataclasses.replace(net, serdes_ps=int(net.serdes_ps * factor))
        )
        yield f"channel bw {tag}", dataclasses.replace(
            base,
            network=dataclasses.replace(net, channel_gbps=net.channel_gbps * factor),
        )
        yield f"vault queue {tag}", dataclasses.replace(
            base,
            hmc=dataclasses.replace(
                base.hmc, vault_queue_entries=max(1, int(16 * factor))
            ),
        )
        yield f"pcie latency {tag}", dataclasses.replace(
            base, pcie=dataclasses.replace(base.pcie, latency_ps=int(base.pcie.latency_ps * factor))
        )


def run(
    workload: str = "BP",
    scale: float = 0.25,
    cfg: Optional[SystemConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    base = cfg or SystemConfig()
    executor = executor or default_executor()
    result = ExperimentResult(
        "Ext: sensitivity",
        "Headline conclusions under 2x parameter perturbations",
        paper_note=(
            "robustness check: UMN > PCIe and sFBFLY > sMESH must survive "
            "every perturbation"
        ),
    )
    variants = list(_variants(base))
    ref = WorkloadRef(workload, scale)
    jobs = [
        job_for(spec, ref, variant)
        for _label, variant in variants
        for spec in _specs()
    ]
    results = iter(run_jobs(jobs, executor, result))
    for label, _variant in variants:
        pcie, umn, mesh, sfb = (next(results) for _ in range(4))
        if any(r is None for r in (pcie, umn, mesh, sfb)):
            continue  # failed point (keep-going); reported on result
        umn_speedup = (pcie.kernel_ps + pcie.memcpy_ps) / (umn.kernel_ps + umn.memcpy_ps)
        result.add(
            parameter=label,
            umn_speedup_vs_pcie=round(umn_speedup, 2),
            sfbfly_speedup_vs_smesh=round(mesh.kernel_ps / sfb.kernel_ps, 2),
        )
    if not result.complete or not result.rows:
        return result  # the flip check needs every perturbation's row
    baseline = result.rows[0]
    result.note(
        f"baseline: UMN {baseline['umn_speedup_vs_pcie']}x, "
        f"sFBFLY {baseline['sfbfly_speedup_vs_smesh']}x on {workload}"
    )
    flipped = [
        r["parameter"]
        for r in result.rows
        if r["umn_speedup_vs_pcie"] <= 1.0 or r["sfbfly_speedup_vs_smesh"] <= 1.0
    ]
    result.note(
        "no perturbation flips a conclusion" if not flipped
        else f"FLIPPED under: {flipped}"
    )
    return result
