"""Fig. 12 — bidirectional channel counts: dFBFLY vs sFBFLY.

Removing intra-cluster channels saves 50% of the memory-network channels at
4 GPUs and 43% at 8 GPUs, which is what lets sFBFLY scale to larger systems
on the HMC's limited port count.
"""

from __future__ import annotations

from typing import Sequence

from ..network.topologies import build_dfbfly, build_sfbfly
from .common import ExperimentResult


def run(gpu_counts: Sequence[int] = (2, 4, 8, 16)) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 12",
        "Bidirectional memory-network channels, dFBFLY vs sFBFLY",
        paper_note="sFBFLY saves 50% at 4 GPUs and 43% at 8 GPUs",
    )
    for g in gpu_counts:
        d = build_dfbfly(num_gpus=g)
        s = build_sfbfly(num_gpus=g)
        dc, sc = d.count_network_links(), s.count_network_links()
        result.add(
            gpus=g,
            hmcs=d.num_routers,
            dfbfly_channels=dc,
            sfbfly_channels=sc,
            saving_pct=round(100 * (dc - sc) / dc, 1),
            max_hmc_degree_dfbfly=max(d.router_degree(r) for r in range(d.num_routers)),
            max_hmc_degree_sfbfly=max(s.router_degree(r) for r in range(s.num_routers)),
        )
    result.note(
        "HMC routers have 8 channels; degrees above 8 mark configurations a "
        "real HMC could not build - dFBFLY exceeds the budget before sFBFLY"
    )
    return result
