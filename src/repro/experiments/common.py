"""Shared experiment plumbing: result tables, rendering, export, and
sweep-job construction from canonical specs."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..config import SystemConfig
from ..exec.executor import SweepExecutor
from ..exec.jobs import JobFailure, SweepJob
from ..exec.planner import prefilter_jobs
from ..exec.runtime import (
    get_default_fidelity,
    get_default_prefilter,
    get_default_scheduler,
)
from ..obs.telemetry import JobTelemetry, flight_summary
from ..system.configs import ArchSpec, get_spec
from ..system.metrics import RunResult
from ..system.spec import SystemSpec, WorkloadRef


@dataclass
class ExperimentResult:
    """The outcome of reproducing one table or figure.

    ``rows`` are flat dicts (one per reported data point); ``paper_note``
    records what the paper claims so reports can show paper-vs-measured
    side by side.
    """

    experiment: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    paper_note: str = ""
    notes: List[str] = field(default_factory=list)
    #: Failed sweep points (keep-going mode); empty on a clean run.
    failures: List[JobFailure] = field(default_factory=list)
    #: Flight-recorder records, one per sweep job in submission order
    #: (see :mod:`repro.obs.telemetry`); observational only — never part
    #: of rows, exports, or cache identity.
    telemetry: List[JobTelemetry] = field(default_factory=list)

    def add(self, **fields: object) -> None:
        self.rows.append(fields)

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def complete(self) -> bool:
        """True when every sweep point produced a row (no failures)."""
        return not self.failures

    def flight_summary(
        self, cache_stats=None, pool_spawns=None
    ) -> Dict[str, object]:
        """Aggregate this experiment's per-job telemetry (see
        :func:`repro.obs.telemetry.flight_summary`)."""
        return flight_summary(
            self.telemetry, self.failures, cache_stats, pool_spawns
        )

    # ------------------------------------------------------------------
    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def render(self) -> str:
        """Plain-text table, suitable for terminal output and reports."""
        lines = [f"== {self.experiment}: {self.title} =="]
        if self.paper_note:
            lines.append(f"paper: {self.paper_note}")
        cols = self.columns()
        if self.rows:
            widths = {
                c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in self.rows))
                for c in cols
            }
            header = "  ".join(c.ljust(widths[c]) for c in cols)
            lines.append(header)
            lines.append("-" * len(header))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in cols)
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.failures:
            lines.append(f"FAILED sweep points ({len(self.failures)}):")
            for failure in self.failures:
                lines.append(f"  {failure.summary()}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """The rows as CSV text (header from the union of row keys)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns())
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def to_json(self) -> str:
        """The full result (metadata + rows + notes) as JSON text."""
        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "paper_note": self.paper_note,
                "rows": self.rows,
                "notes": self.notes,
                "failures": [
                    {
                        "label": f.label,
                        "exc_type": f.exc_type,
                        "message": f.message,
                    }
                    for f in self.failures
                ],
            },
            indent=2,
        )

    def save(self, path: str) -> None:
        """Write to ``path``; format chosen by extension (.csv or .json)."""
        if path.endswith(".csv"):
            payload = self.to_csv()
        elif path.endswith(".json"):
            payload = self.to_json()
        else:
            raise ValueError(f"unsupported extension for {path!r} (.csv/.json)")
        with open(path, "w") as handle:
            handle.write(payload)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def job_for(
    arch: Union[str, ArchSpec],
    workload: Union[str, WorkloadRef],
    cfg: Optional[SystemConfig] = None,
    scale: float = 1.0,
    tag: Optional[str] = None,
    **run_kwargs: Any,
) -> SweepJob:
    """Build one sweep job from its canonical spec pieces.

    ``arch`` may be a Table III / registered architecture name (resolved
    through :func:`repro.system.configs.get_spec`) or an explicit
    :class:`ArchSpec`; ``workload`` a Table II name (wrapped in a
    :class:`WorkloadRef` at ``scale``) or an explicit ref.  Keyword
    arguments become the job's ``run_kwargs``.

    An installed fidelity default (the CLI's ``--fidelity`` /
    ``sweep_defaults(fidelity=...)``) overrides the config's
    ``network_model`` here — the single choke point every experiment's
    jobs flow through — so a whole figure can be re-run at another tier
    without the runner knowing.  An installed vault-scheduler default
    (``--scheduler`` / ``sweep_defaults(scheduler=...)``) overrides
    ``hmc.scheduler`` the same way; combining it with the analytic tier
    raises :class:`~repro.errors.ConfigError` at construction (the
    analytic model is FR-FCFS-calibrated only).
    """
    if isinstance(arch, str):
        arch = get_spec(arch)
    if isinstance(workload, str):
        workload = WorkloadRef(workload, scale)
    fidelity = get_default_fidelity()
    if fidelity is not None:
        base = cfg if cfg is not None else SystemConfig()
        if base.network_model != fidelity:
            cfg = base.scaled(network_model=fidelity)
        else:
            cfg = base
    scheduler = get_default_scheduler()
    if scheduler is not None:
        base = cfg if cfg is not None else SystemConfig()
        if base.hmc.scheduler != scheduler:
            cfg = base.scaled(
                hmc=dataclasses.replace(base.hmc, scheduler=scheduler)
            )
        else:
            cfg = base
    return SweepJob(
        system=SystemSpec.make(arch, workload, cfg, **run_kwargs), tag=tag
    )


def run_jobs(
    jobs: Sequence[SweepJob],
    executor: SweepExecutor,
    result: ExperimentResult,
    prefilter: Optional[float] = None,
) -> List[Optional[RunResult]]:
    """Execute a sweep and merge failures into ``result``.

    Returns one entry per job, in submission order: the
    :class:`RunResult` for points that ran (or hit the cache), ``None``
    for points that failed under keep-going — their structured
    :class:`~repro.exec.jobs.JobFailure` records land on
    ``result.failures``, and the merge loops skip the holes.  Under
    fail-fast (the executor default) a failure raises
    :class:`~repro.errors.SweepError` instead, after completed results
    were salvaged into the cache.

    When a prefilter ratio is active (argument, else the installed
    ``--prefilter`` default), clearly-dominated points are skipped before
    submission: their slots return ``None``, each gets a
    ``source="pruned"`` telemetry record, and one result note lists every
    pruned point — a pruned point is always visible, never silently
    missing.  Exploration sweeps only; figure runners must not pass rows
    with holes to their merge loops, so the CLI exposes the flag on
    ``ext-*`` experiments alone.
    """
    jobs = list(jobs)
    ratio = prefilter if prefilter is not None else get_default_prefilter()
    keep = list(range(len(jobs)))
    pruned: List[Dict[str, Any]] = []
    if ratio is not None:
        keep, pruned = prefilter_jobs(jobs, ratio)
    pruned_by_index = {p["index"]: p for p in pruned}
    outcome_by_index = dict(
        zip(keep, executor.map_outcomes([jobs[i] for i in keep]))
    )
    results: List[Optional[RunResult]] = []
    for i, job in enumerate(jobs):
        if i in pruned_by_index:
            result.telemetry.append(
                JobTelemetry(label=job.label, source="pruned")
            )
            results.append(None)
            continue
        outcome = outcome_by_index[i]
        if outcome.telemetry is not None:
            result.telemetry.append(outcome.telemetry)
        if outcome.ok:
            results.append(outcome.result)
        else:
            result.failures.append(outcome.failure)
            results.append(None)
    if pruned:
        listing = "; ".join(
            f"{p['label']} (predicted {p['ratio']:.1f}x {p['best_label']})"
            for p in pruned
        )
        result.note(
            f"prefilter (ratio {ratio:g}): pruned {len(pruned)} of "
            f"{len(jobs)} points as dominated: {listing}"
        )
    return results


def normalize(values: Sequence[float], to: Optional[float] = None) -> List[float]:
    """Normalize a series to its first element (or an explicit baseline)."""
    base = values[0] if to is None else to
    if base == 0:
        raise ZeroDivisionError("cannot normalize to zero")
    return [v / base for v in values]
