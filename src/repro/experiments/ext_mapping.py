"""Extension — locality-aware page placement (first-touch vs random).

Section III-C of the paper leaves open "how to optimize memory mapping to
increase locality in the memory network traffic".  This experiment answers
the obvious first candidate: NUMA-style **first-touch** placement — a page
lands on the home cluster of the device that first touches it.  Under SKE's
chunked CTA assignment, a streaming kernel's pages then land on the GPU
that will keep using them, turning most network traffic into local-HMC
traffic: fewer hops, lower latency, and lower network energy than the
paper's random placement, at the cost of load-balance on irregular
workloads (compare CG.S).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SystemConfig
from ..exec import SweepExecutor, default_executor
from .common import ExperimentResult, job_for, run_jobs

DEFAULT_WORKLOADS = ("BP", "SCAN", "3DFD", "SRAD", "KMN", "CG.S")


def run(
    scale: float = 0.25,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    arch: str = "GMN",
    cfg: Optional[SystemConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    cfg = cfg or SystemConfig()
    executor = executor or default_executor()
    result = ExperimentResult(
        "Ext: mapping",
        "Random vs first-touch page placement (extension; Section III-C "
        "open question)",
        paper_note=(
            "the paper uses random placement and notes locality-aware "
            "mapping as future work"
        ),
    )
    jobs = [
        job_for(arch, name, cfg, scale=scale, placement_policy=policy)
        for name in workloads
        for policy in ("random", "first_touch")
    ]
    results = iter(run_jobs(jobs, executor, result))
    for name in workloads:
        for policy in ("random", "first_touch"):
            r = next(results)
            if r is None:
                continue  # failed point (keep-going); reported on result
            result.add(
                workload=name,
                placement=policy,
                kernel_us=r.kernel_ps / 1e6,
                avg_hops=round(r.avg_hops, 2),
                avg_net_latency_ns=round(r.avg_net_latency_ps / 1e3, 1),
                energy_uj=r.energy.total_uj if r.energy else 0.0,
            )
    if not result.complete:
        return result  # summary notes need both placements per workload
    speedups = []
    for name in workloads:
        rnd = [x for x in result.rows if x["workload"] == name and x["placement"] == "random"][0]
        ft = [x for x in result.rows if x["workload"] == name and x["placement"] == "first_touch"][0]
        speedups.append((name, rnd["kernel_us"] / ft["kernel_us"]))
    gains = ", ".join(f"{n}: {s:.2f}x" for n, s in speedups)
    result.note(f"first-touch kernel speedup over random: {gains}")
    result.note(
        "streaming workloads gain (pages become local); imbalanced CG.S "
        "shows the load-balance cost of locality"
    )
    return result
