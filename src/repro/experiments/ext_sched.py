"""Extension — vault scheduling policies under heterogeneous traffic.

The paper fixes vault scheduling at FR-FCFS (Table I); with the
:mod:`repro.hmc.sched` registry it becomes a sweep axis.  This experiment
crosses the registered policies with memory-network organizations on the
host-participating workloads (CG.S, FT.S: GPU kernels interleaved with
CPU reduction/twiddle steps), the multi-tenant shape where source-aware
scheduling matters — a latency-bound CPU competing with bandwidth-bound
GPU streams at shared HMCs, per Ausavarungnirun et al.'s staged
memory-scheduler work.

Each row reports the usual runtime breakdown plus per-source service:
mean vault queue wait per requester class (``cpu_wait_ns`` /
``gpu_wait_ns``), served counts, and Jain's fairness index over the
class mean waits (1.0 = classes wait equally; lower = skewed).  Expect
``qos_staged`` to cut ``cpu_wait_ns`` on the shared-HMC organizations at
some GPU cost, ``fcfs`` to anchor the no-reordering floor, and
``frfcfs_cap`` to sit near ``frfcfs`` with bounded worst-case waits.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..config import SystemConfig
from ..exec import SweepExecutor, WorkloadRef, default_executor
from ..exec.runtime import get_default_scheduler
from .common import ExperimentResult, job_for, run_jobs

DEFAULT_POLICIES: Sequence[str] = ("frfcfs", "fcfs", "frfcfs_cap", "qos_staged")
DEFAULT_ARCHS: Sequence[str] = ("UMN", "GMN")
DEFAULT_WORKLOADS: Sequence[str] = ("CG.S", "FT.S")


def _jain(values: Sequence[float]) -> float:
    """Jain's fairness index over positive values (1.0 when all equal)."""
    present = [v for v in values if v > 0]
    if not present:
        return 1.0
    square_sum = sum(v * v for v in present)
    return (sum(present) ** 2) / (len(present) * square_sum)


def run(
    scale: float = 0.25,
    policies: Sequence[str] = DEFAULT_POLICIES,
    archs: Sequence[str] = DEFAULT_ARCHS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    cfg: Optional[SystemConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    base = cfg or SystemConfig()
    executor = executor or default_executor()
    result = ExperimentResult(
        "Ext: sched",
        "Vault scheduling policies x organizations under CPU+GPU traffic "
        "(extension; Table I fixes FR-FCFS)",
        paper_note=(
            "the paper fixes FR-FCFS; staged source-aware policies follow "
            "the heterogeneous memory-scheduler literature"
        ),
    )
    installed = get_default_scheduler()
    if installed is not None:
        # --scheduler pins the whole invocation to one policy; sweeping
        # the full registry underneath it would silently contradict the
        # flag (job_for applies the default to every job it builds).
        policies = (installed,)
        result.note(f"--scheduler {installed}: sweeping only that policy")
    grid = [(p, a, w) for p in policies for a in archs for w in workloads]
    jobs = []
    for policy, arch, workload in grid:
        pcfg = (
            base
            if base.hmc.scheduler == policy
            else base.scaled(hmc=dataclasses.replace(base.hmc, scheduler=policy))
        )
        jobs.append(
            job_for(
                arch,
                WorkloadRef(workload, scale),
                pcfg,
                tag=f"{workload}@{arch}/{policy}",
            )
        )
    results = run_jobs(jobs, executor, result)
    for (policy, arch, workload), res in zip(grid, results):
        if res is None:
            continue  # failed or pruned point; reported on result
        cpu_wait = res.avg_class_wait_ps("cpu")
        gpu_wait = res.avg_class_wait_ps("gpu")
        result.add(
            workload=workload,
            arch=arch,
            scheduler=policy,
            total_us=res.runtime_ps / 1e6,
            kernel_us=res.kernel_ps / 1e6,
            host_us=res.host_ps / 1e6,
            cpu_wait_ns=round(cpu_wait / 1e3, 2),
            gpu_wait_ns=round(gpu_wait / 1e3, 2),
            cpu_served=res.class_served.get("cpu", 0),
            gpu_served=res.class_served.get("gpu", 0),
            row_hit=round(res.hmc_row_hit_rate, 3),
            wait_fairness=round(_jain((cpu_wait, gpu_wait)), 3),
        )
    if result.rows:
        result.note(
            "cpu_wait_ns/gpu_wait_ns: mean vault queue wait per requester "
            "class; wait_fairness: Jain index over the class means "
            "(1.0 = equal waits)"
        )
    return result
