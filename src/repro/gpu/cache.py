"""Set-associative caches with LRU replacement.

GPU L1/L2 caches follow Section III-D: **write-through, write no-allocate**
for global memory so the relaxed consistency model holds across GPUs without
coherence, and atomics always evict the target line before executing at the
HMC.  The write policy itself is enforced by the GPU memory pipeline
(:mod:`repro.gpu.gpu`); this module provides the lookup/fill/evict mechanics
and hit statistics.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Dict, Optional

from ..config import CacheConfig


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """LRU set-associative cache over line addresses."""

    def __init__(self, cfg: CacheConfig, name: str = "cache") -> None:
        self.cfg = cfg
        self.name = name
        self.num_sets = cfg.num_sets
        # One ordered dict per set: tag -> True, LRU at the front.
        self._sets: Dict[int, "collections.OrderedDict[int, bool]"] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _index(self, paddr: int) -> tuple:
        line = paddr // self.cfg.line_bytes
        return line % self.num_sets, line // self.num_sets

    def lookup(self, paddr: int, update_lru: bool = True, count: bool = True) -> bool:
        """Probe the cache; returns True on hit."""
        set_idx, tag = self._index(paddr)
        entries = self._sets.get(set_idx)
        hit = entries is not None and tag in entries
        if hit and update_lru:
            entries.move_to_end(tag)
        if count:
            if hit:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        return hit

    def fill(self, paddr: int) -> Optional[int]:
        """Insert a line; returns the evicted line's base address, if any."""
        set_idx, tag = self._index(paddr)
        entries = self._sets.setdefault(set_idx, collections.OrderedDict())
        if tag in entries:
            entries.move_to_end(tag)
            return None
        evicted = None
        if len(entries) >= self.cfg.ways:
            victim_tag, _ = entries.popitem(last=False)
            evicted = (victim_tag * self.num_sets + set_idx) * self.cfg.line_bytes
        entries[tag] = True
        return evicted

    def evict(self, paddr: int) -> bool:
        """Remove a line if present (atomics, Section III-D)."""
        set_idx, tag = self._index(paddr)
        entries = self._sets.get(set_idx)
        if entries is not None and tag in entries:
            del entries[tag]
            return True
        return False

    def contains(self, paddr: int) -> bool:
        return self.lookup(paddr, update_lru=False, count=False)

    def flush(self) -> None:
        self._sets.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Cache({self.name}, {self.cfg.size_bytes}B/{self.cfg.ways}way)"
