"""GPU substrate: caches, SMs, and the GPU chip."""

from .cache import Cache, CacheStats
from .gpu import GPU, GPUStats
from .sm import SM, SMStats

__all__ = ["Cache", "CacheStats", "GPU", "GPUStats", "SM", "SMStats"]
