"""The GPU chip: SMs + shared L2 + the memory port into the system fabric.

The memory pipeline implements Section III-D:

- global reads allocate in L1/L2 normally (LRU);
- writes are **write-through, no-allocate** in both levels — they update a
  present line but never allocate, and always propagate to the HMC;
- atomics evict the target line from the requesting SM's L1 and from L2 and
  execute at the HMC's logic layer.

The chip-level MSHR table merges concurrent read misses to the same line so
one memory request serves all waiters.  The system builder supplies
``memory_port`` (how a request reaches its HMC: direct link, memory network,
or PCIe), ``translate`` (the shared SKE page table), and ``decode`` (the
physical address mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..core.cta_scheduler import KernelSchedule
from ..core.kernel import Access, Kernel
from ..errors import SimulationError
from ..mem import AccessType, MemoryAccess
from ..sim.engine import Simulator
from .cache import Cache
from .sm import SM

MemoryPort = Callable[[MemoryAccess, Callable[[], None]], None]


@dataclass
class GPUStats:
    reads: int = 0
    writes: int = 0
    atomics: int = 0
    memory_requests: int = 0
    merged_misses: int = 0
    kernel_launches: int = 0
    busy_ps: int = 0


class _KernelContext:
    """Execution state of one kernel launch on one GPU."""

    __slots__ = ("kernel", "schedule", "on_done", "resident", "inflight",
                 "started_ps", "completed")

    def __init__(
        self,
        kernel: Kernel,
        schedule: KernelSchedule,
        on_done: Callable[[], None],
        started_ps: int,
    ) -> None:
        self.kernel = kernel
        self.schedule = schedule
        self.on_done = on_done
        self.resident = 0
        self.inflight = 0
        self.started_ps = started_ps
        self.completed = False


class GPU:
    """One discrete GPU of the multi-GPU system."""

    def __init__(
        self,
        sim: Simulator,
        gpu_id: int,
        cfg: Optional[GPUConfig] = None,
    ) -> None:
        self.sim = sim
        self.gpu_id = gpu_id
        self.cfg = cfg or GPUConfig()
        self.name = f"gpu{gpu_id}"
        self.sms: List[SM] = [SM(sim, self, s, self.cfg) for s in range(self.cfg.num_sms)]
        self.l2 = Cache(self.cfg.l2, name=f"{self.name}.l2")
        self.stats = GPUStats()

        # Wired by the system builder.
        self.memory_port: Optional[MemoryPort] = None
        self.translate: Callable[[int], int] = lambda vaddr: vaddr
        self.decode = None

        self._mshr_table: Dict[int, List[Tuple[SM, Callable[[], None]]]] = {}
        self._contexts: List["_KernelContext"] = []
        self._rr_next = 0

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Kernel,
        schedule: KernelSchedule,
        on_done: Callable[[], None],
        concurrent: bool = False,
    ) -> None:
        """Begin executing this GPU's share of ``kernel``'s CTAs.

        With ``concurrent=True`` the launch may overlap kernels already
        running on this GPU (the SKE extension to concurrent kernel
        execution, Section III); otherwise overlap is an error, matching
        in-order stream semantics.
        """
        if self._contexts and not concurrent:
            raise SimulationError(f"{self.name}: kernel already running")
        if self.memory_port is None:
            raise SimulationError(f"{self.name}: memory port not wired")
        ctx = _KernelContext(kernel, schedule, on_done, self.sim.now)
        self._contexts.append(ctx)
        self.stats.kernel_launches += 1
        self._fill_all_sms()
        # A GPU may receive zero CTAs (small grids, Section V-A).
        self.sim.after(0, partial(self._check_context, ctx))

    def _next_work(self) -> Optional[Tuple["_KernelContext", int]]:
        """Pull the next CTA, round-robin across active kernel contexts."""
        n = len(self._contexts)
        for i in range(n):
            ctx = self._contexts[(self._rr_next + i) % n]
            cta = ctx.schedule.next_cta(self.gpu_id)
            if cta is not None:
                self._rr_next = (self._rr_next + i + 1) % n
                return ctx, cta
        return None

    def _start_cta(self, sm: SM, ctx: "_KernelContext", cta: int) -> None:
        ctx.resident += 1
        sm.start_cta(cta, ctx.kernel.program(cta), token=ctx)

    def _fill_all_sms(self) -> None:
        """CTA placement: breadth-first round-robin over SMs (one CTA per
        SM per pass), as hardware CTA dispatchers do — this keeps all SMs
        busy even when this GPU's share of the grid is small."""
        progress = True
        while progress:
            progress = False
            # Least-loaded SM first, as hardware dispatchers balance load;
            # ties break by SM id for determinism.
            for sm in sorted(self.sms, key=lambda s: (s.resident_ctas, s.sm_id)):
                if not sm.has_free_slot:
                    continue
                work = self._next_work()
                if work is None:
                    return
                self._start_cta(sm, *work)
                progress = True

    def try_refill(self) -> None:
        """Pull more CTAs into free SM slots if kernels are running (used
        when a dynamic schedule gains work after launch, e.g. stealing)."""
        if self._contexts:
            self._fill_all_sms()

    def cta_finished(self, sm: SM, token: "_KernelContext") -> None:
        """Demand-driven refill after a CTA retires."""
        token.resident -= 1
        work = self._next_work()
        if work is not None:
            self._start_cta(sm, *work)
        if token.resident == 0:
            self._check_context(token)

    def _check_context(self, ctx: "_KernelContext") -> None:
        if ctx.completed or ctx.resident > 0 or ctx.inflight > 0:
            return
        if ctx.schedule.has_work(self.gpu_id):
            # Work remains (e.g. stealing armed after an empty initial
            # fill, or slots hogged by a concurrent kernel): start it now
            # if a slot is free, otherwise a later CTA retirement pulls it.
            for sm in self.sms:
                if sm.has_free_slot:
                    cta = ctx.schedule.next_cta(self.gpu_id)
                    if cta is not None:
                        self._start_cta(sm, ctx, cta)
                    break
            return
        ctx.completed = True
        self._contexts.remove(ctx)
        self.stats.busy_ps += self.sim.now - ctx.started_ps
        ctx.on_done()

    @property
    def kernel_active(self) -> bool:
        return bool(self._contexts)

    @property
    def active_kernels(self) -> int:
        return len(self._contexts)

    # ------------------------------------------------------------------
    # Memory pipeline
    # ------------------------------------------------------------------
    def access_memory(
        self,
        sm: SM,
        access: Access,
        on_done: Callable[[], None],
        token: Optional["_KernelContext"] = None,
    ) -> None:
        if access.size > self.cfg.l1.line_bytes:
            raise SimulationError(
                f"access of {access.size}B exceeds the {self.cfg.l1.line_bytes}B "
                "line; workloads must emit line-sized coalesced accesses"
            )
        if token is not None:
            token.inflight += 1

        done = partial(self._access_done, on_done, token)
        paddr = self.translate(access.vaddr)
        line = paddr - paddr % self.cfg.l1.line_bytes
        if access.type is AccessType.READ:
            self._read(sm, line, done)
        elif access.type is AccessType.WRITE:
            self._write(sm, paddr, line, access.size, done)
        else:
            self._atomic(sm, paddr, line, access.size, done)

    def _access_done(
        self, on_done: Callable[[], None], token: Optional["_KernelContext"]
    ) -> None:
        on_done()
        if token is not None:
            token.inflight -= 1
            if token.inflight == 0:
                self._check_context(token)

    # -- reads ----------------------------------------------------------
    def _read(self, sm: SM, line: int, done: Callable[[], None]) -> None:
        self.stats.reads += 1
        if sm.l1.lookup(line):
            self.sim.after(self.cfg.l1.hit_latency_ps, done)
            return
        if self.l2.lookup(line):
            sm.l1.fill(line)
            self.sim.after(
                self.cfg.l1.hit_latency_ps + self.cfg.l2.hit_latency_ps, done
            )
            return
        waiters = self._mshr_table.get(line)
        if waiters is not None:
            # Delayed hit: an earlier miss to the same line is in flight;
            # piggyback on it and reclassify the counted miss as an L2 hit
            # (the request never reaches memory), matching how GPGPU-sim
            # attributes MSHR merges.
            self.stats.merged_misses += 1
            self.l2.stats.misses -= 1
            self.l2.stats.hits += 1
            waiters.append((sm, done))
            return
        self._mshr_table[line] = [(sm, done)]
        request = self._make_request(line, self.cfg.l1.line_bytes, AccessType.READ)
        lookup_ps = self.cfg.l1.hit_latency_ps + self.cfg.l2.hit_latency_ps
        self.sim.after(
            lookup_ps, partial(self._send, request, partial(self._fill_line, line))
        )

    def _fill_line(self, line: int) -> None:
        """A read miss returned: fill L2, then release every merged waiter."""
        self.l2.fill(line)
        for waiter_sm, waiter_done in self._mshr_table.pop(line):
            waiter_sm.l1.fill(line)
            waiter_done()

    # -- writes ---------------------------------------------------------
    def _write(
        self, sm: SM, paddr: int, line: int, size: int, done: Callable[[], None]
    ) -> None:
        self.stats.writes += 1
        # Write-through: update on hit, never allocate on miss.
        sm.l1.lookup(line)
        self.l2.lookup(line, count=False)
        request = self._make_request(paddr, size, AccessType.WRITE)
        self._send(request, done)

    # -- atomics ---------------------------------------------------------
    def _atomic(
        self, sm: SM, paddr: int, line: int, size: int, done: Callable[[], None]
    ) -> None:
        self.stats.atomics += 1
        sm.l1.evict(line)
        self.l2.evict(line)
        request = self._make_request(paddr, size, AccessType.ATOMIC)
        self._send(request, done)

    # -- plumbing ---------------------------------------------------------
    def _make_request(self, paddr: int, size: int, kind: AccessType) -> MemoryAccess:
        decoded = self.decode(paddr) if self.decode is not None else None
        return MemoryAccess(
            paddr=paddr, size=size, type=kind, requester=self.name, decoded=decoded
        )

    def _send(self, request: MemoryAccess, on_done: Callable[[], None]) -> None:
        self.stats.memory_requests += 1
        assert self.memory_port is not None
        self.memory_port(request, on_done)

    # ------------------------------------------------------------------
    # Aggregate cache statistics (Section III-B hit-rate claims)
    # ------------------------------------------------------------------
    def l1_hit_rate(self) -> float:
        hits = sum(sm.l1.stats.hits for sm in self.sms)
        accesses = sum(sm.l1.stats.accesses for sm in self.sms)
        return hits / accesses if accesses else 0.0

    def l2_hit_rate(self) -> float:
        return self.l2.stats.hit_rate

    def __repr__(self) -> str:  # pragma: no cover
        return f"GPU({self.name}, {self.cfg.num_sms} SMs)"
