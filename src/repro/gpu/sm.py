"""Streaming multiprocessor model.

An SM holds up to ``max_ctas_per_sm`` resident CTAs and executes each CTA's
phases: issue the phase's coalesced memory batch (throttled by the SM's
MSHRs), wait for reads/atomics to return, then occupy the SM's shared
execution resources for the phase's compute time.  Compute from other
resident CTAs overlaps outstanding memory, modeling the latency hiding that
warp multiplexing provides on real hardware (DESIGN.md section 2).

Writes are fire-and-forget (relaxed consistency, Section III-D): they do not
block the issuing phase, but the GPU tracks them and kernel completion waits
for the write drain.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Deque, Optional, Sequence

from ..config import GPUConfig
from ..core.kernel import Access, Phase
from ..errors import SimulationError
from ..mem import AccessType
from .cache import Cache

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU


@dataclass
class SMStats:
    ctas_executed: int = 0
    phases_executed: int = 0
    accesses_issued: int = 0
    compute_ps: int = 0


class _CTAContext:
    """Execution state of one resident CTA."""

    __slots__ = ("cta_id", "phases", "phase_idx", "waiting", "pending", "token",
                 "started_ps")

    def __init__(self, cta_id: int, phases: Sequence[Phase], token=None) -> None:
        self.cta_id = cta_id
        self.phases = phases
        self.phase_idx = 0
        #: When the CTA became resident (for the obs tracer's cta spans).
        self.started_ps = 0
        #: Blocking responses (reads/atomics) still outstanding this phase.
        self.waiting = 0
        #: True once all of this phase's accesses have been handed to the
        #: issue queue (the barrier may only fire after that).
        self.pending = False
        #: The GPU-level kernel context this CTA belongs to.
        self.token = token


class SM:
    """One GPU core (stream multiprocessor)."""

    def __init__(self, sim, gpu: "GPU", sm_id: int, cfg: GPUConfig) -> None:
        self.sim = sim
        self.gpu = gpu
        self.sm_id = sm_id
        self.cfg = cfg
        self.l1 = Cache(cfg.l1, name=f"{gpu.name}.sm{sm_id}.l1")
        self.stats = SMStats()
        self._resident = 0
        #: Horizon of the SM's shared execution resources.
        self._compute_free = 0
        self._outstanding = 0
        self._issue_queue: Deque[tuple] = collections.deque()

    # ------------------------------------------------------------------
    # CTA lifecycle
    # ------------------------------------------------------------------
    @property
    def resident_ctas(self) -> int:
        return self._resident

    @property
    def has_free_slot(self) -> bool:
        return self._resident < self.cfg.max_ctas_per_sm

    def start_cta(self, cta_id: int, phases: Sequence[Phase], token=None) -> None:
        if not self.has_free_slot:
            raise SimulationError(f"SM{self.sm_id}: no free CTA slot")
        self._resident += 1
        ctx = _CTAContext(cta_id, phases, token=token)
        ctx.started_ps = self.sim.now
        # Schedule instead of running inline so a burst of launches
        # interleaves deterministically through the event queue.
        self.sim.after(0, partial(self._advance, ctx))

    def _advance(self, ctx: _CTAContext) -> None:
        if ctx.phase_idx >= len(ctx.phases):
            self._finish_cta(ctx)
            return
        phase = ctx.phases[ctx.phase_idx]
        blocking = [a for a in phase.accesses if a.type is not AccessType.WRITE]
        writes = [a for a in phase.accesses if a.type is AccessType.WRITE]
        ctx.waiting = len(blocking)
        ctx.pending = True
        for access in writes:
            self._enqueue_access(access, None, ctx.token)
        for access in blocking:
            self._enqueue_access(access, ctx, ctx.token)
        ctx.pending = False
        self.stats.accesses_issued += len(phase.accesses)
        if ctx.waiting == 0:
            self._compute(ctx)
        self._pump_issue_queue()

    #: Compute timeslice: a CTA reserves the SM's execution resources in
    #: chunks of at most this, so co-resident CTAs (including ones from a
    #: concurrently executing kernel) share the pipelines round-robin
    #: instead of one long phase monopolizing the SM.
    COMPUTE_QUANTUM_PS = 100_000

    def _compute(self, ctx: _CTAContext) -> None:
        phase = ctx.phases[ctx.phase_idx]
        self.stats.compute_ps += phase.compute_ps
        self.stats.phases_executed += 1
        ctx.phase_idx += 1
        self._compute_chunk(ctx, phase.compute_ps)

    def _compute_chunk(self, ctx: _CTAContext, remaining: int) -> None:
        if remaining <= 0:
            self._advance(ctx)
            return
        chunk = min(remaining, self.COMPUTE_QUANTUM_PS)
        start = max(self.sim.now, self._compute_free)
        end = start + chunk
        self._compute_free = end
        self.sim.at(end, partial(self._compute_chunk, ctx, remaining - chunk))

    def _finish_cta(self, ctx: _CTAContext) -> None:
        self._resident -= 1
        self.stats.ctas_executed += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.complete(
                "cta",
                f"cta{ctx.cta_id}",
                ctx.started_ps,
                self.sim.now - ctx.started_ps,
                tid=f"{self.gpu.name}.sm{self.sm_id}",
            )
        self.gpu.cta_finished(self, ctx.token)

    # ------------------------------------------------------------------
    # Memory issue, throttled by MSHRs
    # ------------------------------------------------------------------
    def _enqueue_access(
        self, access: Access, ctx: Optional[_CTAContext], token
    ) -> None:
        self._issue_queue.append((access, ctx, token))

    def _pump_issue_queue(self) -> None:
        while self._issue_queue and self._outstanding < self.cfg.mshrs_per_sm:
            access, ctx, token = self._issue_queue.popleft()
            self._issue(access, ctx, token)

    def _issue(self, access: Access, ctx: Optional[_CTAContext], token) -> None:
        self._outstanding += 1
        self.gpu.access_memory(
            self, access, partial(self._access_done, ctx), token=token
        )

    def _access_done(self, ctx: Optional[_CTAContext]) -> None:
        self._outstanding -= 1
        if ctx is not None:
            ctx.waiting -= 1
            if ctx.waiting == 0 and not ctx.pending:
                self._compute(ctx)
        self._pump_issue_queue()

    @property
    def outstanding(self) -> int:
        return self._outstanding
