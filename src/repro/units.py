"""Physical units and clock-domain constants used throughout the simulator.

All simulation time is integer **picoseconds** so that the different clock
domains in the modeled system (network 1.25 GHz, DRAM 800 MHz, GPU core
1.4 GHz, CPU 4 GHz) can be mixed without floating-point drift.
"""

# ---------------------------------------------------------------------------
# Time units (picoseconds)
# ---------------------------------------------------------------------------
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000

#: Network (HMC logic-layer / SerDes symbol) clock: 1.25 GHz.
NET_CYCLE_PS = 800
#: DRAM clock from Table I: tCK = 1.25 ns.
DRAM_CYCLE_PS = 1_250
#: GPU core clock: 1.4 GHz (Table I), rounded to an integer ps period.
GPU_CYCLE_PS = 714
#: GPU L2 / crossbar clocks (Table I: 700 MHz / 1.25 GHz).
GPU_L2_CYCLE_PS = 1_429
#: CPU core clock: 4 GHz.
CPU_CYCLE_PS = 250

# ---------------------------------------------------------------------------
# Size units (bytes)
# ---------------------------------------------------------------------------
KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


def bytes_per_ps(gigabytes_per_second: float) -> float:
    """Convert a GB/s bandwidth figure into bytes per picosecond."""
    return gigabytes_per_second * GB / 1e12


def transfer_ps(num_bytes: int, gigabytes_per_second: float) -> int:
    """Serialization delay (ps) for ``num_bytes`` at the given bandwidth."""
    if num_bytes <= 0:
        return 0
    return max(1, round(num_bytes / bytes_per_ps(gigabytes_per_second)))
