"""Sweep-level telemetry: flight recorder, progress streaming, trace merge.

PR 1's observability covers one in-process run; once
:class:`~repro.exec.executor.SweepExecutor` fans a sweep over a process
pool, that single-run machinery goes dark — workers cannot share a tracer
and the parent sees nothing between submission and merge.  This module is
the sweep-level counterpart, three cooperating pieces:

- **Flight recorder** — every :func:`~repro.exec.jobs.execute_job` call
  produces a picklable :class:`JobTelemetry` record (wall time, events
  executed, events/sec, peak pending-event count, cache provenance, pool
  retry count, worker pid) that rides back on the
  :class:`~repro.exec.jobs.JobOutcome`.  :func:`flight_summary`
  aggregates a sweep's records and :func:`write_runlog` persists them as
  a ``RUNLOG_<experiment>.jsonl`` artifact (one JSON record per job, one
  trailing summary record).

- **Progress streaming** — the executor narrates job state transitions
  (``begin``/``submitted``/``cached``/``started``/``completed``/
  ``failed``/``retried``/``end``) to a :class:`ProgressListener`.
  :class:`TtyProgress` renders a live one-line progress bar with an ETA
  from completed-job rates; :class:`JsonlProgress` emits one JSON object
  per event on stderr — the machine-readable wire format a future
  ``repro serve`` daemon streams to clients.

- **Merged cross-worker traces** — pool workers cannot append to the
  parent's :class:`~repro.obs.tracer.ChromeTracer`, so each traced job
  dumps its own Chrome trace file (:func:`write_worker_trace`) and the
  parent folds them into a single Perfetto-loadable timeline
  (:func:`merge_traces`): one trace *process* per worker pid, one unique
  *thread* lane per (job, original tid), so a whole sweep is inspectable
  in one ``chrome://tracing`` window.

Telemetry is observational by construction: none of it enters the spec
canonical form or the cache key (like the PR-5 watchdog knobs), so figure
rows stay byte-identical with telemetry on or off.
"""

from __future__ import annotations

import json
import math
import os
import re
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

#: Bump when the RUNLOG / progress-event JSON layouts change shape.
#: 2: jobs gained ``predicted_wall_s`` and the ``pruned`` source; the
#: summary gained ``pruned``, ``prediction``, and ``pool_spawns``.
#: 3: the summary's ``cache`` section gained ``evicted`` (size-cap LRU
#: eviction counts; see docs/serving.md).
TELEMETRY_SCHEMA = 3

#: Job state transitions a sweep can emit, in lifecycle order.
#: ``planned`` fires once per sweep, after submission under the LPT
#: schedule, carrying the predicted aggregate wall time.
PROGRESS_EVENTS = (
    "begin",
    "submitted",
    "cached",
    "planned",
    "started",
    "completed",
    "failed",
    "retried",
    "end",
)


# ---------------------------------------------------------------------------
# Per-job flight-recorder records
# ---------------------------------------------------------------------------
@dataclass
class JobTelemetry:
    """How one sweep job executed (never *what* it computed).

    Produced inside :func:`~repro.exec.jobs.execute_job` (``source:
    "run"``/``"failed"``) or by the executor's cache short-circuit
    (``source: "cache"``); the executor annotates ``retries`` when the
    job had to be resubmitted after a pool death.  Plain picklable data,
    excluded from outcome equality and from every cache key.
    """

    label: str
    #: ``"run"`` (simulated here), ``"analytic"`` (predicted by the
    #: capacity model — no event engine ran), ``"cache"`` (served from
    #: the ResultCache), ``"pruned"`` (skipped by ``--prefilter`` — never
    #: executed), or ``"failed"``.
    source: str = "run"
    wall_s: float = 0.0
    #: Simulation events executed by this job's engine.  For cache hits
    #: this reports the *original* run's count (carried on the cached
    #: RunResult); failures report 0.
    events: int = 0
    #: High-water mark of the engine's pending-event heap.
    peak_pending: int = 0
    worker_pid: int = 0
    #: Times this job was resubmitted after a worker-pool death.
    retries: int = 0
    #: The scheduler's predicted wall time (LPT planning), stamped by the
    #: executor when a planned job lands; ``None`` when unplanned (FIFO,
    #: serial, cache hit).
    predicted_wall_s: Optional[float] = None

    @property
    def events_per_sec(self) -> float:
        """Simulation throughput; 0 when nothing was simulated here."""
        if self.source != "run" or self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def to_record(self) -> Dict[str, Any]:
        """One RUNLOG line (``record: "job"``)."""
        record = {
            "record": "job",
            "label": self.label,
            "source": self.source,
            "wall_s": round(self.wall_s, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_pending": self.peak_pending,
            "worker_pid": self.worker_pid,
            "retries": self.retries,
        }
        if self.predicted_wall_s is not None:
            record["predicted_wall_s"] = round(self.predicted_wall_s, 6)
        return record


def flight_summary(
    telemetry: Sequence[JobTelemetry],
    failures: Sequence[Any] = (),
    cache_stats: Optional[Any] = None,
    pool_spawns: Optional[int] = None,
) -> Dict[str, Any]:
    """Aggregate a sweep's :class:`JobTelemetry` records into one dict.

    ``failures`` is the sweep's :class:`~repro.exec.jobs.JobFailure`
    list (for the slowest-failure highlight); ``cache_stats`` a
    :class:`~repro.exec.cache.CacheStats` (hit/miss/store/corrupt counts
    accumulated across cache instances and pool respawns);
    ``pool_spawns`` the process-lifetime worker-pool spawn count
    (:func:`repro.exec.pool_spawns` — 1 for a whole warm-pool run).
    """
    ran = [t for t in telemetry if t.source == "run"]
    analytic = [t for t in telemetry if t.source == "analytic"]
    cached = [t for t in telemetry if t.source == "cache"]
    failed = [t for t in telemetry if t.source == "failed"]
    pruned = [t for t in telemetry if t.source == "pruned"]
    sim_wall = sum(t.wall_s for t in ran)
    events = sum(t.events for t in ran)
    summary: Dict[str, Any] = {
        "record": "summary",
        "schema": TELEMETRY_SCHEMA,
        "jobs": len(telemetry),
        "ran": len(ran),
        "analytic": len(analytic),
        "cached": len(cached),
        "failed": len(failed),
        "pruned": len(pruned),
        "retried": sum(1 for t in telemetry if t.retries),
        "events": events,
        "sim_wall_s": round(sim_wall, 4),
        "events_per_sec": round(events / sim_wall, 1) if sim_wall > 0 else 0.0,
        "peak_pending": max((t.peak_pending for t in telemetry), default=0),
        "workers": sorted({t.worker_pid for t in telemetry if t.worker_pid}),
    }
    predicted = [
        t for t in ran if t.predicted_wall_s and t.wall_s > 0
    ]
    if predicted:
        # Geomean of actual/predicted: 1.0 is a perfect CostBook, the
        # ratio's distance from 1 is the planner's current bias.
        log_sum = sum(
            math.log(t.wall_s / t.predicted_wall_s) for t in predicted
        )
        summary["prediction"] = {
            "jobs": len(predicted),
            "geomean_actual_over_predicted": round(
                math.exp(log_sum / len(predicted)), 3
            ),
        }
    if pool_spawns is not None:
        summary["pool_spawns"] = pool_spawns
    if ran:
        slowest = max(ran, key=lambda t: t.wall_s)
        summary["slowest"] = {
            "label": slowest.label,
            "wall_s": round(slowest.wall_s, 4),
        }
    failure_walls = [
        f.wall_s for f in failures if getattr(f, "wall_s", None) is not None
    ]
    if failure_walls:
        summary["slowest_failure_s"] = round(max(failure_walls), 4)
    if cache_stats is not None:
        summary["cache"] = {
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "stores": cache_stats.stores,
            "corrupt": cache_stats.corrupt,
            "evicted": getattr(cache_stats, "evicted", 0),
        }
    return summary


def write_runlog(
    path: str,
    experiment: str,
    telemetry: Sequence[JobTelemetry],
    failures: Sequence[Any] = (),
    cache_stats: Optional[Any] = None,
    pool_spawns: Optional[int] = None,
) -> Path:
    """Persist a sweep's flight recorder as ``RUNLOG`` JSONL.

    One ``{"record": "job", ...}`` line per job in submission order,
    then one trailing ``{"record": "summary", ...}`` line (always
    written, even for an empty sweep, so the file self-describes).
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    summary = flight_summary(telemetry, failures, cache_stats, pool_spawns)
    summary["experiment"] = experiment
    with open(out, "w") as handle:
        for t in telemetry:
            handle.write(json.dumps(t.to_record(), sort_keys=True) + "\n")
        handle.write(json.dumps(summary, sort_keys=True) + "\n")
    return out


def runlog_path(directory: str, experiment: str) -> Path:
    """Canonical ``RUNLOG_<experiment>.jsonl`` location under ``directory``."""
    return Path(directory) / f"RUNLOG_{experiment}.jsonl"


# ---------------------------------------------------------------------------
# Live progress streaming
# ---------------------------------------------------------------------------
class ProgressListener:
    """Receives one dict per sweep state transition; base class ignores.

    Event keys: ``event`` (one of :data:`PROGRESS_EVENTS`), plus
    ``label``/``index`` for per-job events, ``total``/``pending`` on
    ``begin``, timing/throughput fields on ``completed``, failure fields
    on ``failed``, and counters on ``end``.  Every event carries ``t``,
    seconds since the listener saw ``begin`` (wall clock).
    """

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover
        pass

    def close(self) -> None:
        """Flush any partial output (called before a fail-fast raise)."""


class JsonlProgress(ProgressListener):
    """Machine-readable stream: one JSON object per line.

    This is the wire format the planned ``repro serve`` daemon
    (ROADMAP item 1) streams to clients; the CLI points it at stderr so
    row output on stdout stays parseable.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event: Dict[str, Any]) -> None:
        self.stream.write(json.dumps(event, sort_keys=True) + "\n")
        self.stream.flush()


class TtyProgress(ProgressListener):
    """A live single-line progress display with an ETA.

    The ETA extrapolates from the mean wall time of jobs *completed this
    sweep* (cache hits are excluded from the rate — they are ~free and
    would make the estimate wildly optimistic).
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._reset(total=0)
        self._open_line = False

    def _reset(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.ran = 0
        self.started_at = time.monotonic()

    def emit(self, event: Dict[str, Any]) -> None:
        kind = event["event"]
        if kind == "begin":
            self._reset(total=event.get("total", 0))
        elif kind == "cached":
            self.done += 1
            self.cached += 1
        elif kind == "completed":
            self.done += 1
            self.ran += 1
        elif kind == "failed":
            self.done += 1
            self.ran += 1
            self.failed += 1
        if kind == "end":
            self._render(final=True)
        elif kind in ("begin", "cached", "completed", "failed"):
            self._render(final=False)

    def _render(self, final: bool) -> None:
        parts = [f"{self.done}/{self.total} jobs"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        elapsed = time.monotonic() - self.started_at
        remaining = self.total - self.done
        if not final and self.ran and remaining > 0 and elapsed > 0:
            rate = self.ran / elapsed
            parts.append(f"{rate:.1f} jobs/s")
            parts.append(f"eta {remaining / rate:.0f}s")
        elif final:
            parts.append(f"{elapsed:.1f}s")
        line = "[sweep] " + ", ".join(parts)
        # Pad so a shrinking line never leaves stale characters behind.
        self.stream.write("\r" + line.ljust(60))
        if final:
            self.stream.write("\n")
            self._open_line = False
        else:
            self._open_line = True
        self.stream.flush()

    def close(self) -> None:
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False


def make_progress(
    mode: Optional[str], stream: Optional[TextIO] = None
) -> Optional[ProgressListener]:
    """Build the listener a CLI ``--progress`` mode asks for.

    ``auto`` (the default) streams a TTY progress line when stderr is a
    terminal and stays silent otherwise — scripts and CI logs are not
    spammed with carriage returns.
    """
    stream = stream if stream is not None else sys.stderr
    if mode in (None, "none"):
        return None
    if mode == "jsonl":
        return JsonlProgress(stream)
    if mode == "tty":
        return TtyProgress(stream)
    if mode == "auto":
        return TtyProgress(stream) if stream.isatty() else None
    raise ValueError(f"unknown progress mode {mode!r} (auto/tty/jsonl/none)")


# ---------------------------------------------------------------------------
# Cross-worker trace merging
# ---------------------------------------------------------------------------
_LABEL_SANITIZER = re.compile(r"[^A-Za-z0-9_.@-]+")
_trace_seq = 0


def write_worker_trace(tracer, trace_dir: str, label: str) -> Path:
    """Dump one job's Chrome trace into the sweep's trace directory.

    The filename carries the worker pid and a per-process sequence
    number, so two jobs — even identically labelled ones on the same
    worker — never collide; the payload additionally records the pid and
    label for :func:`merge_traces`.
    """
    global _trace_seq
    _trace_seq += 1
    pid = os.getpid()
    safe = _LABEL_SANITIZER.sub("_", label) or "job"
    out = Path(trace_dir) / f"trace_{pid}_{_trace_seq:04d}_{safe}.json"
    payload = tracer.to_dict()
    payload["workerPid"] = pid
    payload["jobLabel"] = label
    with open(out, "w") as handle:
        json.dump(payload, handle)
    return out


def merge_traces(paths: Iterable[str], out_path: str) -> Dict[str, Any]:
    """Fold per-job worker traces into one Perfetto-loadable timeline.

    Mapping: each worker *pid* becomes one trace process (named
    ``worker <pid>``); each (job, original tid) pair becomes one trace
    thread with a **globally unique** integer tid, named after the job's
    label (suffixed with the original lane for multi-lane jobs, e.g.
    ``BP@UMN [memcpy]``).  Original per-file ``process_name`` metadata is
    dropped in favor of the worker lanes; all timestamps are simulated
    time and therefore start at 0 in every lane.

    Returns ``{"files", "events", "workers", "path"}``.
    """
    events: List[Dict[str, Any]] = []
    worker_pids: List[int] = []
    next_tid = 1
    files = 0
    for path in sorted(str(p) for p in paths):
        with open(path) as handle:
            payload = json.load(handle)
        files += 1
        worker_pid = int(payload.get("workerPid", 0))
        label = payload.get("jobLabel", Path(path).stem)
        if worker_pid not in worker_pids:
            worker_pids.append(worker_pid)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": worker_pid,
                    "tid": 0,
                    "args": {"name": f"worker {worker_pid}"},
                }
            )
        tid_map: Dict[Any, int] = {}
        for event in payload.get("traceEvents", ()):
            if event.get("ph") == "M" and event.get("name") == "process_name":
                continue  # superseded by the worker lane above
            orig_tid = event.get("tid", 0)
            tid = tid_map.get(orig_tid)
            if tid is None:
                tid = next_tid
                next_tid += 1
                tid_map[orig_tid] = tid
                lane = label if orig_tid in ("sim", 0) else f"{label} [{orig_tid}]"
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": worker_pid,
                        "tid": tid,
                        "args": {"name": lane},
                    }
                )
            merged = dict(event)
            merged["pid"] = worker_pid
            merged["tid"] = tid
            events.append(merged)
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, handle)
    return {
        "files": files,
        "events": len(events),
        "workers": len(worker_pids),
        "path": str(out),
    }


def merge_trace_dir(trace_dir: str, out_path: str) -> Dict[str, Any]:
    """Merge every per-job trace under ``trace_dir`` into ``out_path``."""
    return merge_traces(
        (str(p) for p in Path(trace_dir).glob("trace_*.json")), out_path
    )


__all__ = [
    "JobTelemetry",
    "JsonlProgress",
    "PROGRESS_EVENTS",
    "ProgressListener",
    "TELEMETRY_SCHEMA",
    "TtyProgress",
    "flight_summary",
    "make_progress",
    "merge_trace_dir",
    "merge_traces",
    "runlog_path",
    "write_runlog",
    "write_worker_trace",
]
