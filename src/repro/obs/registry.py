"""Hierarchical metric registry: Counter / Gauge / Histogram primitives.

Components register metrics under dotted hierarchical names
(``gpu0.l1.hits``, ``hmc.c3.0.vault2.queue_depth``) at build time; the
registry then answers queries over the whole tree (:meth:`MetricRegistry.
collect` for the nested dict, :meth:`MetricRegistry.as_flat` for a flat
mapping).  Gauges may wrap a callable so the registry *unifies* the
existing per-component ``stats`` dataclasses without duplicating their
bookkeeping: the value is read live from the component when queried.

Names are namespaced like files in directories: a name may not collide
with an existing metric nor with an interior node of another metric's
path (``a.b`` and ``a.b.c`` cannot both exist).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..errors import MetricError

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (events, bytes, hits)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease ({amount})")
        self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self._value})"


class Gauge:
    """An instantaneous value; either set explicitly or read from ``fn``."""

    __slots__ = ("name", "help", "fn", "_value")

    def __init__(
        self, name: str, fn: Optional[Callable[[], Number]] = None, help: str = ""
    ) -> None:
        self.name = name
        self.help = help
        self.fn = fn
        self._value: Number = 0

    def set(self, value: Number) -> None:
        if self.fn is not None:
            raise MetricError(f"gauge {self.name} is callback-driven; cannot set()")
        self._value = value

    @property
    def value(self) -> Number:
        return self.fn() if self.fn is not None else self._value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution of observed values with exact percentiles.

    Observations are kept sorted, so :meth:`percentile` is O(log n) per
    insert and O(1) per query — fine for the per-run volumes the simulator
    produces (queue waits, packet latencies, service times).
    """

    __slots__ = ("name", "help", "_sorted", "_sum")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._sorted: List[Number] = []
        self._sum: float = 0.0

    def observe(self, value: Number) -> None:
        bisect.insort(self._sorted, value)
        self._sum += value

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._sorted) if self._sorted else 0.0

    def percentile(self, p: float) -> Number:
        """Nearest-rank percentile; ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise MetricError(f"percentile {p} outside [0, 100]")
        if not self._sorted:
            raise MetricError(f"histogram {self.name} has no observations")
        rank = max(1, -(-len(self._sorted) * p // 100))  # ceil
        return self._sorted[int(rank) - 1]

    @property
    def value(self) -> Dict[str, Number]:
        """Summary used when the registry tree is collected."""
        if not self._sorted:
            return {"count": 0, "sum": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self._sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self._sorted[-1],
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricRegistry:
    """The system-wide tree of named metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._nodes: set = set()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, metric: Metric) -> Metric:
        name = metric.name
        if not name:
            raise MetricError("metric name must be non-empty")
        if name in self._metrics:
            raise MetricError(f"metric {name!r} already registered")
        if name in self._nodes:
            raise MetricError(
                f"metric {name!r} collides with an interior node of another metric"
            )
        parts = name.split(".")
        for i in range(1, len(parts)):
            prefix = ".".join(parts[:i])
            if prefix in self._metrics:
                raise MetricError(
                    f"metric {name!r} collides with existing metric {prefix!r}"
                )
        for i in range(1, len(parts)):
            self._nodes.add(".".join(parts[:i]))
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self.register(Counter(name, help))  # type: ignore[return-value]

    def gauge(
        self, name: str, fn: Optional[Callable[[], Number]] = None, help: str = ""
    ) -> Gauge:
        return self.register(Gauge(name, fn=fn, help=help))  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self.register(Histogram(name, help))  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self, prefix: str = "") -> List[str]:
        """All registered names, optionally restricted to a subtree."""
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix + "."
        return sorted(
            n for n in self._metrics if n == prefix or n.startswith(dotted)
        )

    def find(self, prefix: str = "") -> Iterator[Metric]:
        for name in self.names(prefix):
            yield self._metrics[name]

    def as_flat(self, prefix: str = "") -> Dict[str, object]:
        """``{dotted name: current value}`` for a subtree (default: all)."""
        return {n: self._metrics[n].value for n in self.names(prefix)}

    def collect(self, prefix: str = "") -> Dict[str, object]:
        """The metric tree as a nested, JSON-serializable dict."""
        tree: Dict[str, object] = {}
        for name in self.names(prefix):
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})  # type: ignore[assignment]
            node[parts[-1]] = self._metrics[name].value
        return tree
