"""Unified observability layer: metrics, tracing, sampling, profiling.

Four primitives, usable separately or bundled through
:class:`Observability`:

- :class:`MetricRegistry` + :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — the hierarchical metric tree every
  ``MultiGPUSystem`` exposes as ``system.metrics``;
- :class:`ChromeTracer` — span/event tracing to Chrome trace-event JSON
  (open in Perfetto), hooked in via ``Simulator.tracer``;
- :class:`Sampler` — periodic snapshots of congestion gauges into
  windowed time series (``system.sampler`` after a sampled run);
- :class:`EventLoopProfiler` — wall-clock attribution of event callbacks
  per module, hooked in via ``Simulator.profiler``.

See ``docs/observability.md`` for usage and ``repro run --trace/--timeseries/
--profile`` for the CLI entry points.
"""

from .bind import (
    DEFAULT_SAMPLE_INTERVAL_PS,
    Observability,
    install_default_probes,
    register_system_metrics,
)
from .profiler import EventLoopProfiler
from .registry import Counter, Gauge, Histogram, MetricRegistry
from .runtime import default_observability, get_default, set_default
from .sampler import Sampler
from .telemetry import (
    JobTelemetry,
    JsonlProgress,
    ProgressListener,
    TtyProgress,
    flight_summary,
    make_progress,
    merge_trace_dir,
    merge_traces,
    write_runlog,
    write_worker_trace,
)
from .tracer import ChromeTracer

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL_PS",
    "ChromeTracer",
    "Counter",
    "EventLoopProfiler",
    "Gauge",
    "Histogram",
    "JobTelemetry",
    "JsonlProgress",
    "MetricRegistry",
    "Observability",
    "ProgressListener",
    "Sampler",
    "TtyProgress",
    "default_observability",
    "flight_summary",
    "get_default",
    "install_default_probes",
    "make_progress",
    "merge_trace_dir",
    "merge_traces",
    "register_system_metrics",
    "set_default",
    "write_runlog",
    "write_worker_trace",
]
