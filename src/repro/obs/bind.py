"""Wiring between the observability primitives and a built system.

:func:`register_system_metrics` walks a ``MultiGPUSystem`` (duck-typed, so
this module never imports the system layer) and registers gauges over the
components' existing ``stats`` objects — the one queryable tree promised
by the registry, with zero steady-state overhead because values are read
lazily.  :func:`install_default_probes` arms a :class:`~repro.obs.sampler.
Sampler` with the standard congestion series (channel utilization,
in-flight packets, vault queue depth, SM occupancy).

:class:`Observability` bundles the per-run configuration (trace on/off,
sampling cadence, profiling on/off) and is what flows from the CLI into
``run_workload`` / ``MultiGPUSystem``.  A sweep reuses one bundle across
many system instances: traces land in one file with one trace "process"
per run, the profiler accumulates, and each run gets its own sampler.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import MetricError
from .profiler import EventLoopProfiler
from .registry import MetricRegistry
from .sampler import Sampler
from .tracer import ChromeTracer

#: Default sampling cadence: 0.25 simulated microseconds (the CLI default;
#: short enough that even sub-microsecond microbenchmark runs get samples).
DEFAULT_SAMPLE_INTERVAL_PS = 250_000


def register_system_metrics(registry: MetricRegistry, system) -> None:
    """Expose every component's ad-hoc stats through one registry tree."""
    for gpu in system.gpus:
        g = gpu.name
        stats = gpu.stats
        registry.gauge(f"{g}.kernel_launches", fn=lambda s=stats: s.kernel_launches)
        registry.gauge(f"{g}.memory_requests", fn=lambda s=stats: s.memory_requests)
        registry.gauge(f"{g}.reads", fn=lambda s=stats: s.reads)
        registry.gauge(f"{g}.writes", fn=lambda s=stats: s.writes)
        registry.gauge(f"{g}.atomics", fn=lambda s=stats: s.atomics)
        registry.gauge(f"{g}.merged_misses", fn=lambda s=stats: s.merged_misses)
        registry.gauge(
            f"{g}.l1.hits",
            fn=lambda gg=gpu: sum(sm.l1.stats.hits for sm in gg.sms),
        )
        registry.gauge(
            f"{g}.l1.accesses",
            fn=lambda gg=gpu: sum(sm.l1.stats.accesses for sm in gg.sms),
        )
        registry.gauge(f"{g}.l2.hits", fn=lambda gg=gpu: gg.l2.stats.hits)
        registry.gauge(f"{g}.l2.accesses", fn=lambda gg=gpu: gg.l2.stats.accesses)
        registry.gauge(
            f"{g}.resident_ctas",
            fn=lambda gg=gpu: sum(sm.resident_ctas for sm in gg.sms),
        )

    for (cluster, local), hmc in system.hmcs.items():
        h = f"hmc.c{cluster}.{local}"
        registry.gauge(f"{h}.served", fn=lambda hh=hmc: hh.total_served)
        registry.gauge(f"{h}.bytes_read", fn=lambda hh=hmc: hh.stats.bytes_read)
        registry.gauge(f"{h}.bytes_written", fn=lambda hh=hmc: hh.stats.bytes_written)
        registry.gauge(f"{h}.row_hit_rate", fn=lambda hh=hmc: hh.row_hit_rate)
        for vault in hmc.vaults:
            registry.gauge(
                f"{h}.vault{vault.vault_id}.queue_depth",
                fn=lambda v=vault: v.occupancy,
            )
            registry.gauge(
                f"{h}.vault{vault.vault_id}.overflow_peak",
                fn=lambda v=vault: v.stats.overflow_peak,
            )
            registry.gauge(
                f"{h}.vault{vault.vault_id}.queue_wait_ps",
                fn=lambda v=vault: v.stats.total_queue_wait_ps,
            )
        # Per requester class (QoS policies): how much service and queue
        # wait each traffic source class accumulated at this cube.
        for cls in ("cpu", "gpu", "other"):
            registry.gauge(
                f"{h}.class.{cls}.served",
                fn=lambda hh=hmc, c=cls: sum(
                    v.stats.class_served.get(c, 0) for v in hh.vaults
                ),
            )
            registry.gauge(
                f"{h}.class.{cls}.queue_wait_ps",
                fn=lambda hh=hmc, c=cls: sum(
                    v.stats.class_queue_wait_ps.get(c, 0) for v in hh.vaults
                ),
            )

    if system.network is not None:
        stats = system.network.stats
        registry.gauge("net.injected", fn=lambda s=stats: s.injected)
        registry.gauge("net.delivered", fn=lambda s=stats: s.delivered)
        registry.gauge("net.in_flight", fn=lambda s=stats: s.injected - s.delivered)
        registry.gauge("net.avg_latency_ps", fn=lambda s=stats: s.avg_latency_ps)
        registry.gauge("net.avg_hops", fn=lambda s=stats: s.avg_hops)
    if system.pcie is not None:
        stats = system.pcie.stats
        registry.gauge("pcie.transactions", fn=lambda s=stats: s.transactions)
        registry.gauge("pcie.bytes", fn=lambda s=stats: s.bytes)
    if system.pcn is not None:
        stats = system.pcn.stats
        registry.gauge("pcn.transactions", fn=lambda s=stats: s.transactions)
        registry.gauge("pcn.bytes", fn=lambda s=stats: s.bytes)


def install_default_probes(sampler: Sampler, system) -> None:
    """Arm the standard congestion time series on ``sampler``."""
    vaults = [v for hmc in system.hmc_list for v in hmc.vaults]
    sampler.add(
        "vault.queue_depth.mean",
        lambda: sum(v.occupancy for v in vaults) / len(vaults) if vaults else 0.0,
    )
    sampler.add(
        "vault.queue_depth.max",
        lambda: max((v.occupancy for v in vaults), default=0),
    )
    sampler.add(
        "vault.overflow_peak.max",
        lambda: max((v.stats.overflow_peak for v in vaults), default=0),
    )
    sampler.add_delta(
        "vault.queue_wait.ps_per_window",
        lambda: sum(v.stats.total_queue_wait_ps for v in vaults),
    )
    sampler.add(
        "gpu.resident_ctas",
        lambda: sum(sm.resident_ctas for g in system.gpus for sm in g.sms),
    )
    sampler.add(
        "gpu.outstanding_mem",
        lambda: sum(sm.outstanding for g in system.gpus for sm in g.sms),
    )
    if system.network is not None:
        stats = system.network.stats
        sampler.add("net.in_flight", lambda s=stats: s.injected - s.delivered)
        channels = system.network_channels()
        if channels:
            scale = 1.0 / (sampler.interval_ps * len(channels))
            sampler.add_delta(
                "net.channel_utilization",
                lambda chs=channels: sum(ch.stats.busy_ps for ch in chs),
                scale=scale,
            )
    if system.pcie is not None:
        sampler.add_delta("pcie.bytes_per_window", lambda: system.pcie.stats.bytes)


class Observability:
    """One bundle of telemetry sinks, shared across the runs of a sweep."""

    def __init__(
        self,
        trace: bool = False,
        sample_interval_us: Optional[float] = None,
        profile: bool = False,
    ) -> None:
        self.tracer: Optional[ChromeTracer] = ChromeTracer() if trace else None
        self.profiler: Optional[EventLoopProfiler] = (
            EventLoopProfiler() if profile else None
        )
        if sample_interval_us is not None and sample_interval_us <= 0:
            raise MetricError(
                f"sample interval must be positive, got {sample_interval_us}"
            )
        self.sample_interval_ps = (
            int(sample_interval_us * 1e6)
            if sample_interval_us is not None
            else 0
        )
        #: One sampler per bound system, in bind order.
        self.samplers: List[Sampler] = []

    @property
    def enabled(self) -> bool:
        return (
            self.tracer is not None
            or self.profiler is not None
            or self.sample_interval_ps > 0
        )

    # ------------------------------------------------------------------
    def bind(self, system) -> None:
        """Attach the sinks to one freshly built system (pre-run)."""
        sim = system.sim
        pid = 0
        if self.tracer is not None:
            pid = self.tracer.begin_process(f"{system.spec.name}")
            sim.tracer = self.tracer
        if self.profiler is not None:
            sim.profiler = self.profiler
        if self.sample_interval_ps > 0:
            sampler = Sampler(
                sim, self.sample_interval_ps, tracer=self.tracer, pid=pid
            )
            install_default_probes(sampler, system)
            sampler.start()
            self.samplers.append(sampler)
            system.sampler = sampler

    # ------------------------------------------------------------------
    def finish(self, trace_path: Optional[str] = None) -> None:
        """Flush sinks at the end of a CLI invocation."""
        if self.tracer is not None and trace_path:
            self.tracer.dump(trace_path)
