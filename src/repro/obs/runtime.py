"""Process-wide default :class:`~repro.obs.bind.Observability` bundle.

Experiment runners build their systems internally, several layers below
the CLI; threading an ``obs`` argument through every ``fig*`` runner would
churn every signature for a cross-cutting concern.  Instead the CLI (or a
notebook) installs a default bundle here and every subsequently built
``MultiGPUSystem`` picks it up, exactly like a logging root handler.

Explicit ``obs=`` arguments always win over the default.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .bind import Observability

_default: Optional[Observability] = None


def set_default(obs: Optional[Observability]) -> None:
    """Install (or clear, with ``None``) the process-wide default bundle."""
    global _default
    _default = obs


def get_default() -> Optional[Observability]:
    return _default


@contextmanager
def default_observability(obs: Observability):
    """Scope a default bundle to a ``with`` block."""
    previous = _default
    set_default(obs)
    try:
        yield obs
    finally:
        set_default(previous)
