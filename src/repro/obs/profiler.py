"""Wall-clock profiling of the event loop: where does host time go?

Simulated time is free; *wall* time is what makes a sweep slow.  The
:class:`EventLoopProfiler` hooks :meth:`repro.sim.engine.Simulator.run`
(attach it as ``sim.profiler``) and times every callback with
``perf_counter``, attributing the cost to the callback's defining module —
``repro.network.network``, ``repro.hmc.vault``, and so on.  The per-module
table plus the events/sec headline make pathological runs diagnosable
("the flit network burns 80% of the wall clock") without an external
profiler.

When no profiler is attached the engine's hot loop pays a single ``is
None`` check per :meth:`Simulator.run` call, not per event.
"""

from __future__ import annotations

import time
from typing import Callable, Dict


class EventLoopProfiler:
    """Accumulates wall-clock cost per callback module across runs."""

    __slots__ = ("events", "wall_s", "by_module")

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0
        #: module name -> [events, wall seconds]
        self.by_module: Dict[str, list] = {}

    # ------------------------------------------------------------------
    def record(self, fn: Callable[[], None]) -> None:
        """Execute ``fn``, charging its wall time to its module."""
        start = time.perf_counter()
        try:
            fn()
        finally:
            elapsed = time.perf_counter() - start
            self.events += 1
            self.wall_s += elapsed
            # Unwrap functools.partial chains: the hot paths schedule
            # partial-bound methods, and the interesting module is the
            # wrapped callable's, not functools.
            target = fn
            while True:
                inner = getattr(target, "func", None)
                if inner is None or inner is target:
                    break
                target = inner
            module = getattr(target, "__module__", None) or "<unknown>"
            slot = self.by_module.get(module)
            if slot is None:
                self.by_module[module] = [1, elapsed]
            else:
                slot[0] += 1
                slot[1] += elapsed

    # ------------------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def report(self) -> Dict:
        """JSON-serializable summary, modules sorted by wall share."""
        modules = {
            module: {
                "events": count,
                "wall_s": round(secs, 6),
                "share": round(secs / self.wall_s, 4) if self.wall_s else 0.0,
            }
            for module, (count, secs) in sorted(
                self.by_module.items(), key=lambda kv: -kv[1][1]
            )
        }
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "by_module": modules,
        }

    def render(self) -> str:
        """Plain-text table for terminal output."""
        lines = [
            f"event loop: {self.events} events in {self.wall_s:.3f}s wall "
            f"({self.events_per_sec:,.0f} events/s)"
        ]
        for module, stats in self.report()["by_module"].items():
            lines.append(
                f"  {stats['share']:>6.1%}  {stats['wall_s']:>9.3f}s  "
                f"{stats['events']:>9d}  {module}"
            )
        return "\n".join(lines)
