"""Chrome trace-event tracer: simulated time on a Perfetto timeline.

:class:`ChromeTracer` records spans/instants/counter samples in the Chrome
trace-event JSON format, so a run can be opened directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Simulated picoseconds
map onto the format's microsecond timestamps (1 simulated ps = 1e-6 trace
units), preserving full resolution as fractional values.

The tracer is opt-in: components reach it through ``Simulator.tracer``,
which is ``None`` by default, and every emission site guards with a single
attribute check so the disabled cost is one load-and-branch per hook.

Conventions used by the simulator's built-in hooks:

==========  ========================================================
category    span
==========  ========================================================
kernel      one virtual-GPU kernel launch (enqueue wait excluded)
cta         one CTA's residency on an SM
memcpy      a blocking host<->device bulk copy
packet      a packet's life from injection to delivery
vault       one DRAM access' service at a vault (bank + data bus)
pcie        one PCIe switch transaction
==========  ========================================================
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

PS_PER_US = 1_000_000  # trace "ts" is microseconds; sim time is picoseconds

Tid = Union[str, int]


class ChromeTracer:
    """Collects Chrome trace events; write with :meth:`dump`."""

    __slots__ = ("events", "_pid")

    def __init__(self) -> None:
        self.events: List[Dict] = []
        self._pid = 0

    # ------------------------------------------------------------------
    # Process bookkeeping (one "process" per simulated system instance)
    # ------------------------------------------------------------------
    def begin_process(self, label: str) -> int:
        """Open a new trace process lane (e.g. one per run in a sweep)."""
        self._pid += 1
        self.events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": self._pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        return self._pid

    def relabel_process(self, label: str, pid: Optional[int] = None) -> None:
        """Rename an open process lane (the latest metadata event wins)."""
        self.events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": self.current_pid if pid is None else pid,
                "tid": 0,
                "args": {"name": label},
            }
        )

    @property
    def current_pid(self) -> int:
        return self._pid or self.begin_process("sim")

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def complete(
        self,
        cat: str,
        name: str,
        start_ps: int,
        dur_ps: int,
        tid: Tid = "sim",
        args: Optional[Dict] = None,
        pid: Optional[int] = None,
    ) -> None:
        """A span (``ph: X``) from ``start_ps`` lasting ``dur_ps``."""
        event = {
            "ph": "X",
            "cat": cat,
            "name": name,
            "ts": start_ps / PS_PER_US,
            "dur": dur_ps / PS_PER_US,
            "pid": pid if pid is not None else self.current_pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self,
        cat: str,
        name: str,
        ts_ps: int,
        tid: Tid = "sim",
        args: Optional[Dict] = None,
        pid: Optional[int] = None,
    ) -> None:
        """A zero-duration marker (``ph: i``)."""
        event = {
            "ph": "i",
            "s": "t",
            "cat": cat,
            "name": name,
            "ts": ts_ps / PS_PER_US,
            "pid": pid if pid is not None else self.current_pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(
        self,
        name: str,
        ts_ps: int,
        values: Dict[str, float],
        pid: Optional[int] = None,
    ) -> None:
        """A counter sample (``ph: C``) — renders as a graph track."""
        self.events.append(
            {
                "ph": "C",
                "name": name,
                "ts": ts_ps / PS_PER_US,
                "pid": pid if pid is not None else self.current_pid,
                "tid": 0,
                "args": values,
            }
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self.events)

    def categories(self) -> List[str]:
        return sorted({e["cat"] for e in self.events if "cat" in e})

    def to_dict(self) -> Dict:
        return {"traceEvents": self.events, "displayTimeUnit": "ns"}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def dump(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
