"""Periodic gauge sampler: windowed time series over simulated time.

A :class:`Sampler` schedules itself on the simulator every
``interval_ps`` and snapshots a set of probes into parallel arrays —
channel utilization, in-flight packets, vault queue depth, SM occupancy.
Two probe flavors exist:

- ``add(name, fn)`` — samples ``fn()`` as an instantaneous gauge;
- ``add_delta(name, fn, scale)`` — samples the *increase* of a monotonic
  counter ``fn()`` over the window (times ``scale``), which turns
  cumulative byte/busy counters into per-window rates and utilizations.

The sampler only re-arms while other events are pending, so it never keeps
the event queue alive on its own and ``Simulator.run()`` still terminates.
When a :class:`~repro.obs.tracer.ChromeTracer` is attached, every snapshot
is mirrored as Chrome counter events so the series render as graph tracks
under the spans in Perfetto.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import MetricError


class Sampler:
    """Snapshots registered probes every ``interval_ps`` of simulated time."""

    def __init__(self, sim, interval_ps: int, tracer=None, pid: int = 0) -> None:
        if interval_ps <= 0:
            raise MetricError(f"sampling interval must be positive ({interval_ps})")
        self.sim = sim
        self.interval_ps = int(interval_ps)
        self.tracer = tracer
        self.pid = pid
        self.t_ps: List[int] = []
        self.series: Dict[str, List[float]] = {}
        self._probes: List = []  # (name, fn) gauges
        self._deltas: List = []  # (name, fn, scale, [prev]) windowed counters
        self._started = False

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------
    def _claim(self, name: str) -> None:
        if name in self.series:
            raise MetricError(f"sampler probe {name!r} already registered")
        if self._started:
            raise MetricError("cannot add probes after the sampler started")
        self.series[name] = []

    def add(self, name: str, fn: Callable[[], float]) -> None:
        self._claim(name)
        self._probes.append((name, fn))

    def add_delta(
        self, name: str, fn: Callable[[], float], scale: float = 1.0
    ) -> None:
        self._claim(name)
        self._deltas.append((name, fn, scale, [float(fn())]))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise MetricError("sampler already started")
        self._started = True
        self.sim.after(self.interval_ps, self._tick)

    def _tick(self) -> None:
        self.t_ps.append(self.sim.now)
        snapshot: Dict[str, float] = {}
        for name, fn in self._probes:
            value = float(fn())
            self.series[name].append(value)
            snapshot[name] = value
        for name, fn, scale, prev in self._deltas:
            current = float(fn())
            value = (current - prev[0]) * scale
            prev[0] = current
            self.series[name].append(value)
            snapshot[name] = value
        if self.tracer is not None:
            for name, value in snapshot.items():
                self.tracer.counter(
                    name, self.sim.now, {"value": value}, pid=self.pid or None
                )
        # Re-arm only while the simulation still has work: a lone periodic
        # event must not keep the queue alive forever.
        if self.sim.pending_events > 0:
            self.sim.after(self.interval_ps, self._tick)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return len(self.t_ps)

    def as_dict(self) -> Dict:
        """JSON-serializable dump: timestamps plus every series."""
        return {
            "interval_ps": self.interval_ps,
            "num_samples": self.num_samples,
            "t_ps": list(self.t_ps),
            "series": {name: list(vals) for name, vals in self.series.items()},
        }

    def last(self, name: str) -> Optional[float]:
        values = self.series.get(name)
        if values is None:
            raise MetricError(f"no sampled series named {name!r}")
        return values[-1] if values else None
