"""Shared memory-access vocabulary used by GPUs, CPUs, and HMCs."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"
    ATOMIC = "atomic"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decoded through the memory address mapping
    (``RW:CLH:BK:CT:VL:LC:CLL:BY``, Section VI-A)."""

    cluster: int
    local_hmc: int
    vault: int
    bank: int
    row: int

    @property
    def hmc_index(self) -> int:
        """Index of the HMC within its cluster."""
        return self.local_hmc


_access_ids = itertools.count()


@dataclass
class MemoryAccess:
    """One memory transaction as seen by the memory system."""

    paddr: int
    size: int
    type: AccessType
    requester: str = ""
    vaddr: Optional[int] = None
    decoded: Optional[DecodedAddress] = None
    aid: int = field(default_factory=lambda: next(_access_ids))

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE

    def __repr__(self) -> str:  # pragma: no cover
        return f"MemoryAccess#{self.aid}({self.type.value} {self.size}B @0x{self.paddr:x})"
