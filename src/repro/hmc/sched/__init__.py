"""Pluggable vault request schedulers.

The registry maps a policy name (the value of ``HMCConfig.scheduler``)
to the :class:`~.base.VaultScheduler` strategy that implements it,
exactly as :data:`repro.system.fabric.FABRICS` maps organizations to
fabrics.  The vault looks its policy up here at construction, so adding
a policy is a new module plus one :func:`register_scheduler` call — no
vault edits (see docs/extending.md for a walkthrough).
"""

from __future__ import annotations

from typing import Dict, Type

from ...errors import ConfigError
from .base import (
    BankState,
    FlatQueueScheduler,
    QueuedRequest,
    VaultScheduler,
    requester_class,
)
from .fcfs import FCFSScheduler
from .frfcfs import FRFCFSScheduler
from .frfcfs_cap import FRFCFSCapScheduler
from .qos import QoSStagedScheduler

#: Policy name -> scheduler strategy class.
SCHEDULERS: Dict[str, Type[VaultScheduler]] = {}


def register_scheduler(name: str, scheduler_cls: Type[VaultScheduler]) -> None:
    """Register ``scheduler_cls`` as the policy behind ``name``."""
    existing = SCHEDULERS.get(name)
    if existing is not None and existing is not scheduler_cls:
        raise ConfigError(
            f"scheduler {name!r} already registered as "
            f"{existing.__name__}; refusing to overwrite with "
            f"{scheduler_cls.__name__}"
        )
    SCHEDULERS[name] = scheduler_cls


def scheduler_for(name: str) -> Type[VaultScheduler]:
    """Look up the scheduler strategy class for a policy name."""
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; valid: {sorted(SCHEDULERS)}"
        ) from None


register_scheduler("frfcfs", FRFCFSScheduler)
register_scheduler("fcfs", FCFSScheduler)
register_scheduler("frfcfs_cap", FRFCFSCapScheduler)
register_scheduler("qos_staged", QoSStagedScheduler)

__all__ = [
    "SCHEDULERS",
    "BankState",
    "FlatQueueScheduler",
    "QueuedRequest",
    "VaultScheduler",
    "FCFSScheduler",
    "FRFCFSScheduler",
    "FRFCFSCapScheduler",
    "QoSStagedScheduler",
    "register_scheduler",
    "requester_class",
    "scheduler_for",
]
