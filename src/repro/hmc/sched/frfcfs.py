"""FR-FCFS: first-ready, row hits preferred, ties broken by age.

The default policy (Table I: FR-FCFS [48]) in both of its historically
equivalent implementations, selected by ``HMCConfig.frfcfs_fast_scan``:

- the flat reference scan over one queue (``O(queue)`` per issue), and
- the bucketed fast path (per-bank queues + the per-kick bank-state
  snapshot), which skips not-ready banks without touching their requests.

Both produce identical schedules; the identity tests in ``tests/exec``
hold that bar against committed reference rows.  The two code paths are
verbatim moves of the original ``Vault._try_issue`` /
``Vault._try_issue_fast`` loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .base import BankState, QueuedRequest, VaultScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ...config import HMCConfig
    from ..dram import Bank


class FRFCFSScheduler(VaultScheduler):
    """First-ready FCFS over the vault's banks (flat or bucketed scan)."""

    name = "frfcfs"

    def __init__(self, cfg: "HMCConfig") -> None:
        super().__init__(cfg)
        self._fast = cfg.frfcfs_fast_scan
        self.queue: List[QueuedRequest] = []
        #: Fast path: requests bucketed per bank, each bucket in admission
        #: order; ``_queue_len`` tracks admitted entries across buckets.
        self._buckets: Dict[int, List[QueuedRequest]] = {}
        self._queue_len = 0

    def __len__(self) -> int:
        return self._queue_len if self._fast else len(self.queue)

    def admit(self, req: QueuedRequest) -> None:
        if self._fast:
            bank = req.access.decoded.bank
            bucket = self._buckets.get(bank)
            if bucket is None:
                bucket = self._buckets[bank] = []
            bucket.append(req)
            self._queue_len += 1
        else:
            self.queue.append(req)

    # ------------------------------------------------------------------
    def pick(
        self, bank_state: BankState, now: int, banks: List["Bank"]
    ) -> Optional[QueuedRequest]:
        if self._fast:
            return self._pick_fast(bank_state, now, banks)
        return self._pick_flat(bank_state, now, banks)

    def _pick_flat(
        self, bank_state: BankState, now: int, banks: List["Bank"]
    ) -> Optional[QueuedRequest]:
        """The FR-FCFS-preferred ready request, by flat queue scan."""
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[int, int, int]] = None
        for idx, req in enumerate(self.queue):
            decoded = req.access.decoded
            state = bank_state.get(decoded.bank)
            if state is None:
                bank = banks[decoded.bank]
                state = (bank.earliest_issue(now) <= now, bank.open_row)
                bank_state[decoded.bank] = state
            if not state[0]:
                continue
            is_hit = 0 if state[1] == decoded.row else 1
            key = (is_hit, req.arrived_ps, idx)
            if best_key is None or key < best_key:
                best_key, best_idx = key, idx
        if best_idx is None:
            return None
        req = self.queue.pop(best_idx)
        bank_state.pop(req.access.decoded.bank, None)
        return req

    def _pick_fast(
        self, bank_state: BankState, now: int, banks: List["Bank"]
    ) -> Optional[QueuedRequest]:
        """Bucketed FR-FCFS issue: equivalent to :meth:`_pick_flat`.

        Within one bank the flat scan's best candidate is the oldest row
        hit, or the oldest request if none hits (the key is hits-first,
        then admission order, and each bucket preserves admission order).
        The cross-bank winner is picked by the same ``(is_hit, arrived_ps,
        seq)`` key; ``seq`` orders identically to the flat queue index.
        Not-ready banks are skipped without touching their requests, so a
        drain is linear in queue length instead of quadratic.
        """
        best_req: Optional[QueuedRequest] = None
        best_key: Optional[Tuple[int, int, int]] = None
        best_bank = -1
        for bank_id, bucket in self._buckets.items():
            if not bucket:
                continue
            state = bank_state.get(bank_id)
            if state is None:
                bank = banks[bank_id]
                state = (bank.ready_at <= now, bank.open_row)
                bank_state[bank_id] = state
            if not state[0]:
                continue
            open_row = state[1]
            cand = None
            for req in bucket:
                if req.access.decoded.row == open_row:
                    cand = req
                    is_hit = 0
                    break
            if cand is None:
                cand = bucket[0]
                is_hit = 1
            key = (is_hit, cand.arrived_ps, cand.seq)
            if best_key is None or key < best_key:
                best_key, best_req, best_bank = key, cand, bank_id
        if best_req is None:
            return None
        self._buckets[best_bank].remove(best_req)
        self._queue_len -= 1
        bank_state.pop(best_bank, None)
        return best_req

    # ------------------------------------------------------------------
    def horizon(self, now: int, banks: List["Bank"]) -> int:
        if self._fast:
            return min(
                banks[bank_id].ready_at
                for bank_id, bucket in self._buckets.items()
                if bucket
            )
        return min(
            banks[req.access.decoded.bank].earliest_issue(now)
            for req in self.queue
        )
