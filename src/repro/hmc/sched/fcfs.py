"""FCFS: strict arrival order among ready banks, no row-hit preference.

The classic baseline FR-FCFS is measured against: the oldest request
whose bank can accept an issue goes first, even when a younger request
would hit an open row.  Row locality still helps (the row buffer is not
bypassed), it just never reorders service — so FCFS trades row-hit rate
for age fairness and gives sweeps a lower anchor for what scheduling
buys.
"""

from __future__ import annotations

from typing import Tuple

from .base import FlatQueueScheduler, QueuedRequest


class FCFSScheduler(FlatQueueScheduler):
    """Oldest-ready-first, ignoring open-row state."""

    name = "fcfs"

    def key(self, req: QueuedRequest, is_hit: int, idx: int) -> Tuple[int, int]:
        return (req.arrived_ps, idx)
