"""FR-FCFS with a per-bank row-streak cap to bound starvation.

Plain FR-FCFS serves an unbounded run of row hits before an older
row-conflict request; a bank with a streaming hitter can starve a
conflicting requester indefinitely.  This policy counts consecutive
grants to the same (bank, row); once the streak reaches
``HMCConfig.frfcfs_cap_streak``, further hits on that row lose their
priority boost (they are keyed as conflicts), so the oldest request wins
and the row eventually turns over.  Issuing any other row on the bank
resets its streak.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from .base import FlatQueueScheduler, QueuedRequest

if TYPE_CHECKING:  # pragma: no cover
    from ...config import HMCConfig


class FRFCFSCapScheduler(FlatQueueScheduler):
    """FR-FCFS whose row-hit preference expires after a streak cap."""

    name = "frfcfs_cap"

    def __init__(self, cfg: "HMCConfig") -> None:
        super().__init__(cfg)
        self.cap = cfg.frfcfs_cap_streak
        #: bank id -> [row, consecutive grants to that row].
        self._streak: Dict[int, List[int]] = {}

    def key(self, req: QueuedRequest, is_hit: int, idx: int) -> Tuple[int, int, int]:
        if is_hit == 0:
            decoded = req.access.decoded
            streak = self._streak.get(decoded.bank)
            if (
                streak is not None
                and streak[0] == decoded.row
                and streak[1] >= self.cap
            ):
                is_hit = 1  # streak exhausted: no more priority for this row
        return (is_hit, req.arrived_ps, idx)

    def on_issue(self, req: QueuedRequest, was_hit: bool) -> None:
        decoded = req.access.decoded
        streak = self._streak.get(decoded.bank)
        if streak is not None and streak[0] == decoded.row:
            streak[1] += 1
        else:
            self._streak[decoded.bank] = [decoded.row, 1]
