"""Staged source-aware QoS policy for heterogeneous CPU+GPU traffic.

After the staged memory scheduler of Ausavarungnirun et al. ("Staged
Memory Scheduling", ISCA 2012): in a system where a latency-bound CPU
host and bandwidth-bound GPU streams share the memory network, treating
every request equally lets the GPUs' deep request streams crowd out the
CPU's sparse pointer-chasing loads — exactly the contention the UMN/CMN
organizations create at shared HMCs.

Two staged rules on top of FR-FCFS:

1. **Class priority** — requests classify by
   :func:`~repro.hmc.sched.base.requester_class` of
   ``MemoryAccess.requester``: the "cpu" class (latency-bound) always
   outranks "gpu" (bandwidth-bound), which outranks "other".
2. **Per-source batching** — within the bandwidth class, the scheduler
   keeps draining the GPU it is currently serving for up to
   ``HMCConfig.qos_batch_quantum`` grants before competing sources are
   reconsidered, preserving each stream's row locality instead of
   fine-grain interleaving all of them (the staged scheduler's batch
   formation, collapsed to the vault queue's scale).

Within a class (and batch preference) the order is plain FR-FCFS, so the
policy degenerates to the default when only one source is active.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from .base import FlatQueueScheduler, QueuedRequest, requester_class

if TYPE_CHECKING:  # pragma: no cover
    from ...config import HMCConfig

#: Lower rank issues first: CPU latency class ahead of GPU bandwidth
#: streams, unknown sources last.
CLASS_RANK = {"cpu": 0, "gpu": 1, "other": 2}


class QoSStagedScheduler(FlatQueueScheduler):
    """CPU-priority, per-source-batched FR-FCFS (staged QoS)."""

    name = "qos_staged"

    def __init__(self, cfg: "HMCConfig") -> None:
        super().__init__(cfg)
        self.quantum = cfg.qos_batch_quantum
        self._batch_source: Optional[str] = None
        self._batch_left = 0

    def key(
        self, req: QueuedRequest, is_hit: int, idx: int
    ) -> Tuple[int, int, int, int, int]:
        requester = req.access.requester
        rank = CLASS_RANK.get(requester_class(requester), 2)
        in_batch = (
            0
            if rank == 1
            and self._batch_left > 0
            and requester == self._batch_source
            else 1
        )
        return (rank, in_batch, is_hit, req.arrived_ps, idx)

    def on_issue(self, req: QueuedRequest, was_hit: bool) -> None:
        requester = req.access.requester
        if requester_class(requester) != "gpu":
            return  # batching applies to the bandwidth class only
        if requester == self._batch_source and self._batch_left > 0:
            self._batch_left -= 1
        else:
            self._batch_source = requester
            self._batch_left = self.quantum - 1
