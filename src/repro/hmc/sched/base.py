"""Vault-scheduler strategy interface.

A :class:`VaultScheduler` owns the vault's admitted request queue and
decides, kick by kick, which request issues next.  The vault keeps
everything else — the overflow buffer, the data bus, DRAM timing, stats,
and kick scheduling — so a policy is just queue bookkeeping plus a
selection rule.  Policies register under a name in
:data:`repro.hmc.sched.SCHEDULERS` (the vault analogue of
:data:`repro.system.fabric.FABRICS`) and are selected with
``HMCConfig.scheduler``.

The contract mirrors how the built-in FR-FCFS loop always worked:

- ``admit`` appends a request in arrival order (``seq`` is the global
  admission sequence; sorting by it equals sorting by queue index).
- ``pick`` selects *and removes* the request to issue now, or returns
  ``None`` when no queued request's bank is ready.  ``bank_state`` is the
  vault's per-kick ``(ready_now, open_row)`` snapshot keyed by bank id: a
  policy fills missing entries lazily and **must** drop the issued
  request's bank entry so the next iteration of the same kick sees that
  bank's new state.
- ``horizon`` is a lower bound on the next time any queued request could
  issue; the vault re-kicks then.  Only called while the queue is
  non-empty.
- ``on_issue`` observes every service (after the bank access started) so
  stateful policies (streak caps, batching) can update without touching
  the vault.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ...mem import MemoryAccess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config -> sched)
    from ...config import HMCConfig
    from ..dram import Bank

CompletionCallback = Callable[[MemoryAccess], None]

#: bank id -> (ready_now, open_row), the vault's per-kick snapshot.
BankState = Dict[int, Tuple[bool, Optional[int]]]

_DATACLASS_OPTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_DATACLASS_OPTS)
class QueuedRequest:
    access: MemoryAccess
    on_done: CompletionCallback
    arrived_ps: int
    #: Admission order within the vault.  The queue preserves admission
    #: order, so sorting by ``seq`` is identical to sorting by queue index
    #: — which lets the bucketed fast path reproduce the flat scan's
    #: FR-FCFS tie-break exactly.
    seq: int = 0


def requester_class(requester: str) -> str:
    """Coarse QoS class of a requester id: "cpu", "gpu", or "other".

    The CPU host stamps ``"cpu"``, GPUs stamp ``"gpu0"``/``"gpu1"``/...;
    anything else (including an unstamped empty string) is "other" so a
    misbehaving traffic source degrades to best-effort instead of
    crashing a policy.
    """
    if requester.startswith("cpu") or requester == "host":
        return "cpu"
    if requester.startswith("gpu"):
        return "gpu"
    return "other"


class VaultScheduler:
    """Strategy interface for vault request scheduling (see module doc)."""

    #: Registry key; set by each concrete policy.
    name: str = ""

    def __init__(self, cfg: "HMCConfig") -> None:
        self.cfg = cfg

    def __len__(self) -> int:
        """Number of admitted (queued) requests."""
        raise NotImplementedError

    def admit(self, req: QueuedRequest) -> None:
        """Accept one request into the queue (arrival order)."""
        raise NotImplementedError

    def pick(
        self, bank_state: BankState, now: int, banks: List["Bank"]
    ) -> Optional[QueuedRequest]:
        """Select and remove the request to issue at ``now``, if any."""
        raise NotImplementedError

    def horizon(self, now: int, banks: List["Bank"]) -> int:
        """Earliest time any queued request's bank could accept an issue."""
        raise NotImplementedError

    def on_issue(self, req: QueuedRequest, was_hit: bool) -> None:
        """Hook: ``req`` was just issued (``was_hit``: open-row hit)."""


class FlatQueueScheduler(VaultScheduler):
    """Shared machinery for policies over a single flat queue.

    Subclasses supply :meth:`key`; the smallest key among ready requests
    issues.  The scan, readiness check, and horizon are identical to the
    reference FR-FCFS flat scan, so alternative policies differ from the
    default only in their ordering rule.
    """

    def __init__(self, cfg: "HMCConfig") -> None:
        super().__init__(cfg)
        self.queue: List[QueuedRequest] = []

    def __len__(self) -> int:
        return len(self.queue)

    def admit(self, req: QueuedRequest) -> None:
        self.queue.append(req)

    def key(self, req: QueuedRequest, is_hit: int, idx: int):
        """Ordering key; lower issues first.  ``is_hit`` is 0 on an
        open-row hit, 1 otherwise (the FR-FCFS convention)."""
        raise NotImplementedError

    def pick(
        self, bank_state: BankState, now: int, banks: List["Bank"]
    ) -> Optional[QueuedRequest]:
        best_idx: Optional[int] = None
        best_key = None
        for idx, req in enumerate(self.queue):
            decoded = req.access.decoded
            state = bank_state.get(decoded.bank)
            if state is None:
                bank = banks[decoded.bank]
                state = (bank.earliest_issue(now) <= now, bank.open_row)
                bank_state[decoded.bank] = state
            if not state[0]:
                continue
            is_hit = 0 if state[1] == decoded.row else 1
            key = self.key(req, is_hit, idx)
            if best_key is None or key < best_key:
                best_key, best_idx = key, idx
        if best_idx is None:
            return None
        req = self.queue.pop(best_idx)
        bank_state.pop(req.access.decoded.bank, None)
        return req

    def horizon(self, now: int, banks: List["Bank"]) -> int:
        return min(
            banks[req.access.decoded.bank].earliest_issue(now)
            for req in self.queue
        )
