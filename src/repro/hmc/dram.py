"""DRAM bank timing model for the HMC vaults.

Open-row policy with the Table I timing parameters.  The model is
command-level rather than cycle-accurate: each access is classified as a row
hit / row empty / row conflict and charged the corresponding latency, while
per-bank ``ready_at`` horizons and the shared vault data bus provide
bank-level parallelism and serialization (DESIGN.md section 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..config import DRAMTiming
from ..mem import AccessType


class RowOutcome(enum.Enum):
    HIT = "hit"
    EMPTY = "empty"
    CONFLICT = "conflict"


@dataclass
class BankStats:
    accesses: int = 0
    hits: int = 0
    conflicts: int = 0


class Bank:
    """One DRAM bank: an open row and an earliest-next-command horizon."""

    __slots__ = ("open_row", "ready_at", "stats", "_last_was_write")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at: int = 0
        self.stats = BankStats()
        self._last_was_write = False

    def classify(self, row: int) -> RowOutcome:
        if self.open_row is None:
            return RowOutcome.EMPTY
        if self.open_row == row:
            return RowOutcome.HIT
        return RowOutcome.CONFLICT

    def access(
        self, row: int, access_type: AccessType, now_ps: int, timing: DRAMTiming
    ) -> int:
        """Issue an access; returns the time the data phase completes.

        Updates the bank's open row and ``ready_at`` horizon.
        """
        outcome = self.classify(row)
        issue = max(now_ps, self.ready_at)
        if outcome is RowOutcome.HIT:
            latency = timing.ps(timing.tCL)
        elif outcome is RowOutcome.EMPTY:
            latency = timing.ps(timing.tRCD + timing.tCL)
        else:
            extra_wr = timing.tWR if self._last_was_write else 0
            latency = timing.ps(extra_wr + timing.tRP + timing.tRCD + timing.tCL)
        data_done = issue + latency

        # Command occupancy: the column access pipeline frees after tCCD; an
        # activate additionally holds the bank for tRAS before it may be
        # precharged again.
        if outcome is RowOutcome.HIT:
            occupancy = timing.ps(timing.tCCD)
        else:
            occupancy = max(timing.ps(timing.tRAS), latency - timing.ps(timing.tCL))
        self.ready_at = issue + occupancy
        self.open_row = row
        self._last_was_write = access_type is AccessType.WRITE

        self.stats.accesses += 1
        if outcome is RowOutcome.HIT:
            self.stats.hits += 1
        elif outcome is RowOutcome.CONFLICT:
            self.stats.conflicts += 1
        return data_done

    def earliest_issue(self, now_ps: int) -> int:
        return max(now_ps, self.ready_at)
