"""DRAM bank timing model for the HMC vaults.

Open-row policy with the Table I timing parameters.  The model is
command-level rather than cycle-accurate: each access is classified as a row
hit / row empty / row conflict and charged the corresponding latency, while
per-bank ``ready_at`` horizons and the shared vault data bus provide
bank-level parallelism and serialization (DESIGN.md section 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..config import DRAMTiming
from ..mem import AccessType


class RowOutcome(enum.Enum):
    HIT = "hit"
    EMPTY = "empty"
    CONFLICT = "conflict"


@dataclass
class BankStats:
    accesses: int = 0
    hits: int = 0
    conflicts: int = 0


class Bank:
    """One DRAM bank: an open row and an earliest-next-command horizon."""

    __slots__ = ("open_row", "ready_at", "stats", "_last_was_write")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at: int = 0
        self.stats = BankStats()
        self._last_was_write = False

    def classify(self, row: int) -> RowOutcome:
        if self.open_row is None:
            return RowOutcome.EMPTY
        if self.open_row == row:
            return RowOutcome.HIT
        return RowOutcome.CONFLICT

    def access(
        self, row: int, access_type: AccessType, now_ps: int, timing: DRAMTiming
    ) -> int:
        """Issue an access; returns the time the data phase completes.

        Updates the bank's open row and ``ready_at`` horizon.
        """
        open_row = self.open_row
        ready = self.ready_at
        issue = now_ps if now_ps > ready else ready
        stats = self.stats
        stats.accesses += 1
        if open_row == row:
            # Row hit: a column access, pipeline frees after tCCD.
            data_done = issue + timing.hit_ps
            self.ready_at = issue + timing.ccd_ps
            stats.hits += 1
        else:
            if open_row is None:
                latency = timing.empty_ps
            else:
                latency = (
                    timing.conflict_wr_ps
                    if self._last_was_write
                    else timing.conflict_ps
                )
                stats.conflicts += 1
            data_done = issue + latency
            # An activate holds the bank for tRAS before it may be
            # precharged again (or until the precharge+activate completes).
            occupancy = latency - timing.cl_ps
            if occupancy < timing.ras_ps:
                occupancy = timing.ras_ps
            self.ready_at = issue + occupancy
            self.open_row = row
        self._last_was_write = access_type is AccessType.WRITE
        return data_done

    def earliest_issue(self, now_ps: int) -> int:
        return max(now_ps, self.ready_at)
