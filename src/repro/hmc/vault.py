"""Vault controller: pluggable scheduling over the vault's DRAM banks.

Each vault has a bounded request queue (Table I: 16 entries, FR-FCFS
[48]); when the queue is full, arriving requests wait in the logic-layer
overflow buffer and are admitted as entries free up.  *Which* queued
request issues next is delegated to a :class:`~repro.hmc.sched.base.
VaultScheduler` strategy selected by ``HMCConfig.scheduler`` (default
FR-FCFS: row hits first, ties broken by age); the vault itself owns the
overflow buffer, the shared data bus, DRAM timing, and statistics.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from functools import partial
from typing import Deque, Dict, List, Optional, Tuple

from ..config import HMCConfig
from ..errors import SimulationError
from ..mem import AccessType, MemoryAccess
from ..sim.engine import Simulator
from .dram import Bank
from .sched import scheduler_for
from .sched.base import CompletionCallback, QueuedRequest, requester_class

#: Extra latency charged for the logic-layer ALU of an atomic operation.
ATOMIC_ALU_PS = 2_500


@dataclass
class VaultStats:
    served: int = 0
    row_hits: int = 0
    atomics: int = 0
    total_queue_wait_ps: int = 0
    total_service_ps: int = 0
    overflow_peak: int = 0
    #: Per requester class ("cpu"/"gpu"/"other", see
    #: :func:`repro.hmc.sched.requester_class`): served request counts and
    #: summed queue waits, the inputs to per-source latency and fairness
    #: columns in scheduler sweeps.
    class_served: Dict[str, int] = field(default_factory=dict)
    class_queue_wait_ps: Dict[str, int] = field(default_factory=dict)


class Vault:
    """One vault: banks + a shared data bus + a scheduled request queue."""

    def __init__(
        self,
        sim: Simulator,
        cfg: HMCConfig,
        vault_id: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.vault_id = vault_id
        self.name = name or f"vault{vault_id}"
        #: Banks are built on first access: most vaults in a sweep never
        #: see traffic, and eager construction dominated system build time.
        self._banks: Optional[List[Bank]] = None
        self.sched = scheduler_for(cfg.scheduler)(cfg)
        self.overflow: Deque[QueuedRequest] = collections.deque()
        self.bus_busy_until: int = 0
        self.stats = VaultStats()
        self._kick_at: Optional[int] = None
        self._next_seq = 0

    @property
    def banks(self) -> List[Bank]:
        if self._banks is None:
            self._banks = [Bank() for _ in range(self.cfg.banks_per_vault)]
        return self._banks

    # ------------------------------------------------------------------
    def enqueue(self, access: MemoryAccess, on_done: CompletionCallback) -> None:
        """Accept a request; it is queued (or buffered on overflow)."""
        if access.decoded is None:
            raise SimulationError("memory access reached a vault without decode")
        req = QueuedRequest(access, on_done, self.sim.now, self._next_seq)
        self._next_seq += 1
        if len(self.sched) < self.cfg.vault_queue_entries:
            self.sched.admit(req)
        else:
            self.overflow.append(req)
            self.stats.overflow_peak = max(self.stats.overflow_peak, len(self.overflow))
        self._schedule_kick(self.sim.now)

    # ------------------------------------------------------------------
    # Issue loop (policy-agnostic; selection lives in self.sched)
    # ------------------------------------------------------------------
    def _schedule_kick(self, when_ps: int) -> None:
        when_ps = max(when_ps, self.sim.now)
        if self._kick_at is not None and self._kick_at <= when_ps:
            return
        self._kick_at = when_ps
        self.sim.at(when_ps, self._kick)

    def _kick(self) -> None:
        self._kick_at = None
        self._drain_overflow()
        # Per-kick snapshot of bank state: sim.now is constant across the
        # issue loop and a bank's readiness/open row only changes when this
        # loop issues to it, so (ready, open_row) is computed once per bank
        # per kick instead of once per candidate per issue iteration, and
        # refreshed only for the bank that was just issued to (the
        # scheduler drops the issued bank's entry on every pick).
        bank_state: Dict[int, Tuple[bool, Optional[int]]] = {}
        sched = self.sched
        while len(sched):
            req = sched.pick(bank_state, self.sim.now, self.banks)
            if req is None:
                break
            self._service(req)
        self._drain_overflow()
        if len(sched):
            horizon = sched.horizon(self.sim.now, self.banks)
            self._schedule_kick(max(horizon, self.sim.now + 1))

    def _drain_overflow(self) -> None:
        while self.overflow and len(self.sched) < self.cfg.vault_queue_entries:
            self.sched.admit(self.overflow.popleft())

    def _service(self, req: QueuedRequest) -> None:
        access = req.access
        decoded = access.decoded
        now = self.sim.now
        timing = self.cfg.timing
        bank = self.banks[decoded.bank]
        was_hit = bank.open_row == decoded.row
        data_done = bank.access(decoded.row, access.type, now, timing)
        self.sched.on_issue(req, was_hit)
        stats = self.stats
        if access.type is AccessType.ATOMIC:
            data_done += ATOMIC_ALU_PS
            stats.atomics += 1

        transfer_cycles = -(-access.size // self.cfg.vault_bus_bytes_per_cycle)
        if transfer_cycles < 1:
            transfer_cycles = 1
        transfer_ps = transfer_cycles * timing.tCK_ps
        bus_busy = self.bus_busy_until
        bus_start = data_done if data_done > bus_busy else bus_busy
        done = bus_start + transfer_ps
        self.bus_busy_until = done

        stats.served += 1
        if was_hit:
            stats.row_hits += 1
        wait_ps = now - req.arrived_ps
        stats.total_queue_wait_ps += wait_ps
        stats.total_service_ps += done - now
        cls = requester_class(access.requester)
        stats.class_served[cls] = stats.class_served.get(cls, 0) + 1
        stats.class_queue_wait_ps[cls] = (
            stats.class_queue_wait_ps.get(cls, 0) + wait_ps
        )

        tracer = self.sim.tracer
        if tracer is not None:
            tracer.complete(
                "vault",
                access.type.name.lower(),
                self.sim.now,
                done - self.sim.now,
                tid=self.name,
                args={"bank": decoded.bank, "row_hit": was_hit},
            )

        self.sim.at(done, partial(req.on_done, access))
        # A completion frees a queue entry; give the overflow a chance.
        if self.overflow:
            self._schedule_kick(self.sim.now)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.sched) + len(self.overflow)

    @property
    def row_hit_rate(self) -> float:
        return self.stats.row_hits / self.stats.served if self.stats.served else 0.0
