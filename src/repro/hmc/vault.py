"""Vault controller: FR-FCFS scheduling over the vault's DRAM banks.

Each vault has a bounded request queue (Table I: 16 entries, FR-FCFS [48]);
when the queue is full, arriving requests wait in the logic-layer overflow
buffer and are admitted as entries free up.  The scheduler prefers row hits
(first-ready) and breaks ties by age (first-come-first-served).
"""

from __future__ import annotations

import collections
import sys
from dataclasses import dataclass
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config import HMCConfig
from ..errors import SimulationError
from ..mem import AccessType, MemoryAccess
from ..sim.engine import Simulator
from .dram import Bank

CompletionCallback = Callable[[MemoryAccess], None]

#: Extra latency charged for the logic-layer ALU of an atomic operation.
ATOMIC_ALU_PS = 2_500

_DATACLASS_OPTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_DATACLASS_OPTS)
class _QueuedRequest:
    access: MemoryAccess
    on_done: CompletionCallback
    arrived_ps: int
    #: Admission order within the vault.  The queue preserves admission
    #: order, so sorting by ``seq`` is identical to sorting by queue index
    #: — which lets the bucketed fast path reproduce the flat scan's
    #: FR-FCFS tie-break exactly.
    seq: int = 0


@dataclass
class VaultStats:
    served: int = 0
    row_hits: int = 0
    atomics: int = 0
    total_queue_wait_ps: int = 0
    total_service_ps: int = 0
    overflow_peak: int = 0


class Vault:
    """One vault: banks + a shared data bus + an FR-FCFS request queue."""

    def __init__(
        self,
        sim: Simulator,
        cfg: HMCConfig,
        vault_id: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.vault_id = vault_id
        self.name = name or f"vault{vault_id}"
        #: Banks are built on first access: most vaults in a sweep never
        #: see traffic, and eager construction dominated system build time.
        self._banks: Optional[List[Bank]] = None
        self.queue: List[_QueuedRequest] = []
        self.overflow: Deque[_QueuedRequest] = collections.deque()
        self.bus_busy_until: int = 0
        self.stats = VaultStats()
        self._kick_at: Optional[int] = None
        self._fast = cfg.frfcfs_fast_scan
        #: Fast path: requests bucketed per bank, each bucket in admission
        #: order; ``_queue_len`` tracks admitted entries across buckets.
        self._buckets: Dict[int, List[_QueuedRequest]] = {}
        self._queue_len = 0
        self._next_seq = 0

    @property
    def banks(self) -> List[Bank]:
        if self._banks is None:
            self._banks = [Bank() for _ in range(self.cfg.banks_per_vault)]
        return self._banks

    # ------------------------------------------------------------------
    def enqueue(self, access: MemoryAccess, on_done: CompletionCallback) -> None:
        """Accept a request; it is queued (or buffered on overflow)."""
        if access.decoded is None:
            raise SimulationError("memory access reached a vault without decode")
        req = _QueuedRequest(access, on_done, self.sim.now, self._next_seq)
        self._next_seq += 1
        if self._queued_count() < self.cfg.vault_queue_entries:
            self._admit(req)
        else:
            self.overflow.append(req)
            self.stats.overflow_peak = max(self.stats.overflow_peak, len(self.overflow))
        self._schedule_kick(self.sim.now)

    def _queued_count(self) -> int:
        return self._queue_len if self._fast else len(self.queue)

    def _admit(self, req: _QueuedRequest) -> None:
        if self._fast:
            bank = req.access.decoded.bank
            bucket = self._buckets.get(bank)
            if bucket is None:
                bucket = self._buckets[bank] = []
            bucket.append(req)
            self._queue_len += 1
        else:
            self.queue.append(req)

    # ------------------------------------------------------------------
    # FR-FCFS scheduling
    # ------------------------------------------------------------------
    def _schedule_kick(self, when_ps: int) -> None:
        when_ps = max(when_ps, self.sim.now)
        if self._kick_at is not None and self._kick_at <= when_ps:
            return
        self._kick_at = when_ps
        self.sim.at(when_ps, self._kick)

    def _kick(self) -> None:
        self._kick_at = None
        self._drain_overflow()
        # Per-kick snapshot of bank state: sim.now is constant across the
        # issue loop and a bank's readiness/open row only changes when this
        # loop issues to it, so (ready, open_row) is computed once per bank
        # per kick instead of once per candidate per issue iteration, and
        # refreshed only for the bank that was just issued to.
        bank_state: Dict[int, Tuple[bool, Optional[int]]] = {}
        if self._fast:
            progressed = True
            while progressed and self._queue_len:
                progressed = self._try_issue_fast(bank_state)
        else:
            progressed = True
            while progressed and self.queue:
                progressed = self._try_issue(bank_state)
        self._drain_overflow()
        if self._fast:
            if self._queue_len:
                now = self.sim.now
                banks = self.banks
                horizon = min(
                    banks[bank_id].ready_at
                    for bank_id, bucket in self._buckets.items()
                    if bucket
                )
                self._schedule_kick(max(horizon, now + 1))
        elif self.queue:
            horizon = min(
                self.banks[req.access.decoded.bank].earliest_issue(self.sim.now)
                for req in self.queue
            )
            self._schedule_kick(max(horizon, self.sim.now + 1))

    def _drain_overflow(self) -> None:
        while self.overflow and self._queued_count() < self.cfg.vault_queue_entries:
            self._admit(self.overflow.popleft())

    def _try_issue(self, bank_state: Dict[int, Tuple[bool, Optional[int]]]) -> bool:
        """Issue the FR-FCFS-preferred request if one is ready now.

        ``bank_state`` caches ``(ready_now, open_row)`` per bank for the
        duration of one kick; an entry is dropped (and lazily recomputed)
        when a request is issued to that bank.
        """
        now = self.sim.now
        banks = self.banks
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[int, int, int]] = None
        for idx, req in enumerate(self.queue):
            decoded = req.access.decoded
            state = bank_state.get(decoded.bank)
            if state is None:
                bank = banks[decoded.bank]
                state = (bank.earliest_issue(now) <= now, bank.open_row)
                bank_state[decoded.bank] = state
            if not state[0]:
                continue
            is_hit = 0 if state[1] == decoded.row else 1
            key = (is_hit, req.arrived_ps, idx)
            if best_key is None or key < best_key:
                best_key, best_idx = key, idx
        if best_idx is None:
            return False
        req = self.queue.pop(best_idx)
        bank_state.pop(req.access.decoded.bank, None)
        self._service(req)
        return True

    def _try_issue_fast(self, bank_state: Dict[int, Tuple[bool, Optional[int]]]) -> bool:
        """Bucketed FR-FCFS issue: equivalent to :meth:`_try_issue`.

        Within one bank the flat scan's best candidate is the oldest row
        hit, or the oldest request if none hits (the key is hits-first,
        then admission order, and each bucket preserves admission order).
        The cross-bank winner is picked by the same ``(is_hit, arrived_ps,
        seq)`` key; ``seq`` orders identically to the flat queue index.
        Not-ready banks are skipped without touching their requests, so a
        drain is linear in queue length instead of quadratic.
        """
        now = self.sim.now
        banks = self.banks
        best_req: Optional[_QueuedRequest] = None
        best_key: Optional[Tuple[int, int, int]] = None
        best_bank = -1
        for bank_id, bucket in self._buckets.items():
            if not bucket:
                continue
            state = bank_state.get(bank_id)
            if state is None:
                bank = banks[bank_id]
                state = (bank.ready_at <= now, bank.open_row)
                bank_state[bank_id] = state
            if not state[0]:
                continue
            open_row = state[1]
            cand = None
            for req in bucket:
                if req.access.decoded.row == open_row:
                    cand = req
                    is_hit = 0
                    break
            if cand is None:
                cand = bucket[0]
                is_hit = 1
            key = (is_hit, cand.arrived_ps, cand.seq)
            if best_key is None or key < best_key:
                best_key, best_req, best_bank = key, cand, bank_id
        if best_req is None:
            return False
        self._buckets[best_bank].remove(best_req)
        self._queue_len -= 1
        bank_state.pop(best_bank, None)
        self._service(best_req)
        return True

    def _service(self, req: _QueuedRequest) -> None:
        access = req.access
        decoded = access.decoded
        now = self.sim.now
        timing = self.cfg.timing
        bank = self.banks[decoded.bank]
        was_hit = bank.open_row == decoded.row
        data_done = bank.access(decoded.row, access.type, now, timing)
        stats = self.stats
        if access.type is AccessType.ATOMIC:
            data_done += ATOMIC_ALU_PS
            stats.atomics += 1

        transfer_cycles = -(-access.size // self.cfg.vault_bus_bytes_per_cycle)
        if transfer_cycles < 1:
            transfer_cycles = 1
        transfer_ps = transfer_cycles * timing.tCK_ps
        bus_busy = self.bus_busy_until
        bus_start = data_done if data_done > bus_busy else bus_busy
        done = bus_start + transfer_ps
        self.bus_busy_until = done

        stats.served += 1
        if was_hit:
            stats.row_hits += 1
        stats.total_queue_wait_ps += now - req.arrived_ps
        stats.total_service_ps += done - now

        tracer = self.sim.tracer
        if tracer is not None:
            tracer.complete(
                "vault",
                access.type.name.lower(),
                self.sim.now,
                done - self.sim.now,
                tid=self.name,
                args={"bank": decoded.bank, "row_hit": was_hit},
            )

        self.sim.at(done, partial(req.on_done, access))
        # A completion frees a queue entry; give the overflow a chance.
        if self.overflow:
            self._schedule_kick(self.sim.now)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._queued_count() + len(self.overflow)

    @property
    def row_hit_rate(self) -> float:
        return self.stats.row_hits / self.stats.served if self.stats.served else 0.0
