"""Vault controller: FR-FCFS scheduling over the vault's DRAM banks.

Each vault has a bounded request queue (Table I: 16 entries, FR-FCFS [48]);
when the queue is full, arriving requests wait in the logic-layer overflow
buffer and are admitted as entries free up.  The scheduler prefers row hits
(first-ready) and breaks ties by age (first-come-first-served).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config import HMCConfig
from ..errors import SimulationError
from ..mem import AccessType, MemoryAccess
from ..sim.engine import Simulator
from .dram import Bank, RowOutcome

CompletionCallback = Callable[[MemoryAccess], None]

#: Extra latency charged for the logic-layer ALU of an atomic operation.
ATOMIC_ALU_PS = 2_500


@dataclass
class _QueuedRequest:
    access: MemoryAccess
    on_done: CompletionCallback
    arrived_ps: int


@dataclass
class VaultStats:
    served: int = 0
    row_hits: int = 0
    atomics: int = 0
    total_queue_wait_ps: int = 0
    total_service_ps: int = 0
    overflow_peak: int = 0


class Vault:
    """One vault: banks + a shared data bus + an FR-FCFS request queue."""

    def __init__(
        self,
        sim: Simulator,
        cfg: HMCConfig,
        vault_id: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.vault_id = vault_id
        self.name = name or f"vault{vault_id}"
        self.banks: List[Bank] = [Bank() for _ in range(cfg.banks_per_vault)]
        self.queue: List[_QueuedRequest] = []
        self.overflow: Deque[_QueuedRequest] = collections.deque()
        self.bus_busy_until: int = 0
        self.stats = VaultStats()
        self._kick_at: Optional[int] = None

    # ------------------------------------------------------------------
    def enqueue(self, access: MemoryAccess, on_done: CompletionCallback) -> None:
        """Accept a request; it is queued (or buffered on overflow)."""
        if access.decoded is None:
            raise SimulationError("memory access reached a vault without decode")
        req = _QueuedRequest(access, on_done, self.sim.now)
        if len(self.queue) < self.cfg.vault_queue_entries:
            self.queue.append(req)
        else:
            self.overflow.append(req)
            self.stats.overflow_peak = max(self.stats.overflow_peak, len(self.overflow))
        self._schedule_kick(self.sim.now)

    # ------------------------------------------------------------------
    # FR-FCFS scheduling
    # ------------------------------------------------------------------
    def _schedule_kick(self, when_ps: int) -> None:
        when_ps = max(when_ps, self.sim.now)
        if self._kick_at is not None and self._kick_at <= when_ps:
            return
        self._kick_at = when_ps
        self.sim.at(when_ps, self._kick)

    def _kick(self) -> None:
        self._kick_at = None
        self._drain_overflow()
        # Per-kick snapshot of bank state: sim.now is constant across the
        # issue loop and a bank's readiness/open row only changes when this
        # loop issues to it, so (ready, open_row) is computed once per bank
        # per kick instead of once per candidate per issue iteration, and
        # refreshed only for the bank that was just issued to.
        bank_state: Dict[int, Tuple[bool, Optional[int]]] = {}
        progressed = True
        while progressed and self.queue:
            progressed = self._try_issue(bank_state)
        self._drain_overflow()
        if self.queue:
            horizon = min(
                self.banks[req.access.decoded.bank].earliest_issue(self.sim.now)
                for req in self.queue
            )
            self._schedule_kick(max(horizon, self.sim.now + 1))

    def _drain_overflow(self) -> None:
        while self.overflow and len(self.queue) < self.cfg.vault_queue_entries:
            self.queue.append(self.overflow.popleft())

    def _try_issue(self, bank_state: Dict[int, Tuple[bool, Optional[int]]]) -> bool:
        """Issue the FR-FCFS-preferred request if one is ready now.

        ``bank_state`` caches ``(ready_now, open_row)`` per bank for the
        duration of one kick; an entry is dropped (and lazily recomputed)
        when a request is issued to that bank.
        """
        now = self.sim.now
        banks = self.banks
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[int, int, int]] = None
        for idx, req in enumerate(self.queue):
            decoded = req.access.decoded
            state = bank_state.get(decoded.bank)
            if state is None:
                bank = banks[decoded.bank]
                state = (bank.earliest_issue(now) <= now, bank.open_row)
                bank_state[decoded.bank] = state
            if not state[0]:
                continue
            is_hit = 0 if state[1] == decoded.row else 1
            key = (is_hit, req.arrived_ps, idx)
            if best_key is None or key < best_key:
                best_key, best_idx = key, idx
        if best_idx is None:
            return False
        req = self.queue.pop(best_idx)
        bank_state.pop(req.access.decoded.bank, None)
        self._service(req)
        return True

    def _service(self, req: _QueuedRequest) -> None:
        access = req.access
        decoded = access.decoded
        bank = self.banks[decoded.bank]
        was_hit = bank.classify(decoded.row) is RowOutcome.HIT
        data_done = bank.access(decoded.row, access.type, self.sim.now, self.cfg.timing)
        if access.type is AccessType.ATOMIC:
            data_done += ATOMIC_ALU_PS
            self.stats.atomics += 1

        transfer_cycles = max(
            1, -(-access.size // self.cfg.vault_bus_bytes_per_cycle)
        )
        transfer_ps = transfer_cycles * self.cfg.timing.tCK_ps
        bus_start = max(data_done, self.bus_busy_until)
        done = bus_start + transfer_ps
        self.bus_busy_until = done

        self.stats.served += 1
        if was_hit:
            self.stats.row_hits += 1
        self.stats.total_queue_wait_ps += self.sim.now - req.arrived_ps
        self.stats.total_service_ps += done - self.sim.now

        tracer = self.sim.tracer
        if tracer is not None:
            tracer.complete(
                "vault",
                access.type.name.lower(),
                self.sim.now,
                done - self.sim.now,
                tid=self.name,
                args={"bank": decoded.bank, "row_hit": was_hit},
            )

        on_done = req.on_done
        self.sim.at(done, lambda: on_done(access))
        # A completion frees a queue entry; give the overflow a chance.
        if self.overflow:
            self._schedule_kick(self.sim.now)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.queue) + len(self.overflow)

    @property
    def row_hit_rate(self) -> float:
        return self.stats.row_hits / self.stats.served if self.stats.served else 0.0
