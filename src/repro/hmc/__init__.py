"""Hybrid Memory Cube substrate: DRAM banks, FR-FCFS vaults, the HMC device."""

from .dram import Bank, BankStats, RowOutcome
from .hmc import HMC, HMCStats
from .vault import ATOMIC_ALU_PS, Vault, VaultStats

__all__ = [
    "Bank",
    "BankStats",
    "RowOutcome",
    "HMC",
    "HMCStats",
    "ATOMIC_ALU_PS",
    "Vault",
    "VaultStats",
]
