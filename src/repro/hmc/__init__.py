"""Hybrid Memory Cube substrate: DRAM banks, scheduled vaults, the HMC device."""

from .dram import Bank, BankStats, RowOutcome
from .hmc import HMC, HMCStats
from .sched import (
    SCHEDULERS,
    VaultScheduler,
    register_scheduler,
    requester_class,
    scheduler_for,
)
from .vault import ATOMIC_ALU_PS, Vault, VaultStats

__all__ = [
    "Bank",
    "BankStats",
    "RowOutcome",
    "HMC",
    "HMCStats",
    "ATOMIC_ALU_PS",
    "SCHEDULERS",
    "Vault",
    "VaultScheduler",
    "VaultStats",
    "register_scheduler",
    "requester_class",
    "scheduler_for",
]
