"""The Hybrid Memory Cube device: logic-layer switch + 16 vaults.

The HMC is a pure memory device here; packetization and network traversal
are handled by :mod:`repro.network` and the system builders.  The logic
layer's switching cost toward a vault is charged by the network on delivery;
the vault controllers then provide FR-FCFS DRAM service.

Atomic operations are executed on the logic die near the vault controllers
(Section III-D): they occupy the target bank like a read and pay a small ALU
latency, and the result is returned with the response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..config import HMCConfig
from ..errors import SimulationError
from ..mem import AccessType, MemoryAccess
from ..sim.engine import Simulator
from .vault import Vault

CompletionCallback = Callable[[MemoryAccess], None]


@dataclass
class HMCStats:
    reads: int = 0
    writes: int = 0
    atomics: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes + self.atomics


class HMC:
    """One memory cube: ``cfg.num_vaults`` vaults behind a logic layer."""

    def __init__(
        self,
        sim: Simulator,
        cfg: Optional[HMCConfig] = None,
        name: str = "hmc",
    ) -> None:
        self.sim = sim
        self.cfg = cfg or HMCConfig()
        self.name = name
        self.vaults: List[Vault] = [
            Vault(sim, self.cfg, vault_id=v, name=f"{name}.vault{v}")
            for v in range(self.cfg.num_vaults)
        ]
        self.stats = HMCStats()

    # ------------------------------------------------------------------
    def access(self, access: MemoryAccess, on_done: CompletionCallback) -> None:
        """Perform a memory access; ``on_done`` fires at data completion."""
        if access.decoded is None:
            raise SimulationError(f"{self.name}: access arrived without decoded address")
        vault_id = access.decoded.vault
        if not 0 <= vault_id < self.cfg.num_vaults:
            raise SimulationError(
                f"{self.name}: vault {vault_id} out of range "
                f"[0, {self.cfg.num_vaults})"
            )
        if access.type is AccessType.READ:
            self.stats.reads += 1
            self.stats.bytes_read += access.size
        elif access.type is AccessType.WRITE:
            self.stats.writes += 1
            self.stats.bytes_written += access.size
        else:
            self.stats.atomics += 1
        self.vaults[vault_id].enqueue(access, on_done)

    # ------------------------------------------------------------------
    @property
    def row_hit_rate(self) -> float:
        served = sum(v.stats.served for v in self.vaults)
        hits = sum(v.stats.row_hits for v in self.vaults)
        return hits / served if served else 0.0

    @property
    def total_served(self) -> int:
        return sum(v.stats.served for v in self.vaults)

    def __repr__(self) -> str:  # pragma: no cover
        return f"HMC({self.name}, {self.cfg.num_vaults} vaults)"
