"""NVLink-style processor-centric network (Fig. 1(b), extension).

Dedicated point-to-point links between processors: a full mesh among the
GPUs plus CPU-GPU links.  Unlike the PCIe switch there is no shared fabric
— each pair owns its links — but like any processor-centric design, remote
*memory* is only reachable through the processor that owns it (Section II-B:
"the topologies are limited to processor-centric network").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..config import PCNConfig
from ..errors import SimulationError
from ..network.channel import Channel
from ..sim.engine import Simulator


@dataclass
class PCNStats:
    transactions: int = 0
    bytes: int = 0


class PCNFabric:
    """Point-to-point link mesh between the CPU and the GPUs."""

    def __init__(
        self,
        sim: Simulator,
        gpu_names: List[str],
        cfg: Optional[PCNConfig] = None,
        cpu_name: str = "cpu",
    ) -> None:
        self.sim = sim
        self.cfg = cfg or PCNConfig()
        self.cpu_name = cpu_name
        self._links: Dict[Tuple[str, str], Channel] = {}
        self.stats = PCNStats()
        for a, b in itertools.combinations(gpu_names, 2):
            self._add_pair(a, b, self.cfg.links_per_pair)
        for gpu in gpu_names:
            self._add_pair(cpu_name, gpu, self.cfg.cpu_links_per_gpu)

    def _add_pair(self, a: str, b: str, width: int) -> None:
        self._links[(a, b)] = Channel(
            f"pcn:{a}->{b}", a, b, self.cfg.link_gbps, width
        )
        self._links[(b, a)] = Channel(
            f"pcn:{b}->{a}", b, a, self.cfg.link_gbps, width
        )

    # ------------------------------------------------------------------
    def link(self, src: str, dst: str) -> Channel:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise SimulationError(f"no PCN link {src} -> {dst}") from None

    def transaction(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        on_done: Callable[[], None],
    ) -> None:
        """Move ``payload_bytes`` over the dedicated src->dst link."""
        channel = self.link(src, dst)
        size = payload_bytes + self.cfg.header_bytes
        self.stats.transactions += 1
        self.stats.bytes += size
        arrive = channel.transmit(size, self.sim.now + self.cfg.latency_ps)
        self.sim.at(arrive, on_done)

    # ------------------------------------------------------------------
    def channels(self) -> List[Channel]:
        return list(self._links.values())

    def bidirectional_link_count(self) -> int:
        return len(self._links) // 2
