"""NVLink-style processor-centric network substrate (extension)."""

from .pcn import PCNFabric, PCNStats

__all__ = ["PCNFabric", "PCNStats"]
