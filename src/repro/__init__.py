"""repro: reproduction of "Multi-GPU System Design with Memory Networks"
(Kim, Lee, Jeong, Kim — MICRO 2014).

The package provides:

- the **SKE runtime** (:mod:`repro.core`): one virtual GPU over N physical
  GPUs, CTA scheduling policies, shared virtual memory, and the
  ``RW:CLH:BK:CT:VL:LC:CLL:BY`` address mapping;
- the **memory-network simulator** (:mod:`repro.network`): HMC-router
  topologies (sFBFLY, dFBFLY, dDFLY, sMESH, sTORUS, overlay, ...) with
  minimal and UGAL routing;
- the substrates: :mod:`repro.hmc` (FR-FCFS vaults, DRAM timing),
  :mod:`repro.gpu` (SMs, L1/L2), :mod:`repro.cpu`, :mod:`repro.pcie`;
- :mod:`repro.system`: the Table III architectures (PCIe/CMN/GMN/UMN) and
  the experiment runner;
- :mod:`repro.workloads`: the Table II suite as synthetic kernels.

Quickstart::

    from repro import get_spec, get_workload, run_workload

    result = run_workload(get_spec("UMN"), get_workload("KMN", scale=0.25))
    print(result.as_row())
"""

from .config import DEFAULT_CONFIG, SystemConfig
from .errors import (
    AddressError,
    ConfigError,
    MetricError,
    ReproError,
    RoutingError,
    SchedulerError,
    SimulationError,
    TopologyError,
)
from .obs import (
    ChromeTracer,
    Counter,
    EventLoopProfiler,
    Gauge,
    Histogram,
    MetricRegistry,
    Observability,
    Sampler,
)
from .system import (
    TABLE_III,
    ArchSpec,
    MultiGPUSystem,
    Organization,
    RunResult,
    TransferMode,
    geometric_mean,
    get_spec,
    run_workload,
    run_workload_detailed,
    system_report,
)
from .trace import TraceRecorder, load_trace, replay_trace
from .workloads import all_workloads, get_workload, make_vectoradd

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SystemConfig",
    "AddressError",
    "ChromeTracer",
    "ConfigError",
    "Counter",
    "EventLoopProfiler",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricRegistry",
    "Observability",
    "ReproError",
    "Sampler",
    "RoutingError",
    "SchedulerError",
    "SimulationError",
    "TopologyError",
    "TABLE_III",
    "ArchSpec",
    "MultiGPUSystem",
    "Organization",
    "RunResult",
    "TransferMode",
    "geometric_mean",
    "get_spec",
    "run_workload",
    "run_workload_detailed",
    "system_report",
    "TraceRecorder",
    "load_trace",
    "replay_trace",
    "all_workloads",
    "get_workload",
    "make_vectoradd",
    "__version__",
]
