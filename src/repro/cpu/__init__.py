"""Host CPU substrate."""

from .host import HostAccess, HostCPU, HostPhase, HostStats

__all__ = ["HostAccess", "HostCPU", "HostPhase", "HostStats"]
