"""Host CPU model.

The host thread is a latency-bound memory client: an out-of-order core with
a bounded effective memory-level parallelism (``max_outstanding``).  Host
work is a sequence of :class:`HostPhase` objects (compute + a batch of
cache-line accesses), mirroring the CTA phase model.  A small L2 cache
filters repeated lines; misses go out through the system-wired memory port —
the CPU's own DDR/HMC in conventional organizations, or the unified memory
network (optionally over the pass-through overlay) in UMN, which is exactly
what Fig. 18 measures.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Sequence, Tuple

from ..config import CacheConfig, CPUConfig
from ..errors import SimulationError
from ..gpu.cache import Cache
from ..mem import AccessType, MemoryAccess
from ..sim.engine import Simulator

MemoryPort = Callable[[MemoryAccess, Callable[[], None]], None]


@dataclass(frozen=True)
class HostAccess:
    vaddr: int
    size: int
    type: AccessType


@dataclass(frozen=True)
class HostPhase:
    """One step of host-thread work: a memory batch, then compute."""

    compute_ps: int
    accesses: Tuple[HostAccess, ...] = ()


@dataclass
class HostStats:
    phases: int = 0
    accesses: int = 0
    memory_requests: int = 0
    compute_ps: int = 0
    finished_at_ps: int = 0


class HostCPU:
    """The host CPU executing the CUDA host thread."""

    def __init__(self, sim: Simulator, cfg: Optional[CPUConfig] = None) -> None:
        self.sim = sim
        self.cfg = cfg or CPUConfig()
        self.name = "cpu"
        l2_cfg = CacheConfig(
            size_bytes=self.cfg.l2_size_bytes,
            ways=16,
            line_bytes=self.cfg.line_bytes,
            hit_latency_ps=self.cfg.l2_hit_ps,
        )
        self.l2 = Cache(l2_cfg, name="cpu.l2")
        self.stats = HostStats()

        # Wired by the system builder.
        self.memory_port: Optional[MemoryPort] = None
        self.translate: Callable[[int], int] = lambda vaddr: vaddr
        self.decode = None

        self._outstanding = 0
        self._issue_queue: Deque[Tuple[HostAccess, Callable[[], None]]] = (
            collections.deque()
        )

    # ------------------------------------------------------------------
    def run_program(
        self, phases: Sequence[HostPhase], on_done: Callable[[], None]
    ) -> None:
        """Execute host phases sequentially; ``on_done`` fires at the end."""
        if self.memory_port is None:
            raise SimulationError("cpu: memory port not wired")
        phases = list(phases)

        def run_phase(idx: int) -> None:
            if idx >= len(phases):
                self.stats.finished_at_ps = self.sim.now
                on_done()
                return
            phase = phases[idx]
            self.stats.phases += 1
            remaining = len(phase.accesses)

            def after_memory() -> None:
                self.stats.compute_ps += phase.compute_ps
                self.sim.after(phase.compute_ps, lambda: run_phase(idx + 1))

            if remaining == 0:
                after_memory()
                return
            state = {"left": remaining}

            def one_done() -> None:
                state["left"] -= 1
                if state["left"] == 0:
                    after_memory()

            for access in phase.accesses:
                self._enqueue(access, one_done)
            self._pump()

        run_phase(0)

    # ------------------------------------------------------------------
    # Memory path with bounded MLP
    # ------------------------------------------------------------------
    def _enqueue(self, access: HostAccess, done: Callable[[], None]) -> None:
        self._issue_queue.append((access, done))

    def _pump(self) -> None:
        while self._issue_queue and self._outstanding < self.cfg.max_outstanding:
            access, done = self._issue_queue.popleft()
            self._issue(access, done)

    def _issue(self, access: HostAccess, done: Callable[[], None]) -> None:
        self.stats.accesses += 1
        self._outstanding += 1

        def complete() -> None:
            self._outstanding -= 1
            done()
            self._pump()

        paddr = self.translate(access.vaddr)
        line = paddr - paddr % self.cfg.line_bytes
        if access.type is AccessType.READ and self.l2.lookup(line):
            self.sim.after(self.cfg.l2_hit_ps, complete)
            return
        if access.type is AccessType.READ:
            self.l2.fill(line)
        self.stats.memory_requests += 1
        request = MemoryAccess(
            paddr=line if access.type is AccessType.READ else paddr,
            size=access.size,
            type=access.type,
            requester=self.name,
            decoded=self.decode(paddr) if self.decode is not None else None,
        )
        assert self.memory_port is not None
        self.memory_port(request, complete)

    @property
    def outstanding(self) -> int:
        return self._outstanding
