"""Shim for legacy editable installs on environments without the wheel
package (the offline test image); configuration lives in pyproject.toml."""

from setuptools import setup

setup()
