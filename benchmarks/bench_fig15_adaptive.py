"""Fig. 15 benchmark: MIN vs UGAL adaptive routing."""

from repro.experiments import fig15_adaptive


def test_fig15_adaptive_routing(benchmark):
    result = benchmark.pedantic(
        fig15_adaptive.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    gains = {(r["topology"], r["workload"]): r["ugal_gain_pct"] for r in result.rows}
    # The imbalanced CG.S benefits from adaptivity on dFBFLY (paper: 9.5%).
    assert gains[("dfbfly", "CG.S")] > 2.0
    # Adaptive routing never hurts badly on the uniform workloads
    # (paper: ~1-2% gains).
    for topo in ("ddfly", "dfbfly"):
        for wl in ("KMN", "CP"):
            assert gains[(topo, wl)] > -3.0
