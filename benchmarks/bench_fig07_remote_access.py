"""Fig. 7 benchmark: remote-memory-access cost, PCIe vs GMN."""

from repro.experiments import fig07_remote_access


def test_fig07_remote_access(benchmark):
    result = benchmark.pedantic(
        fig07_remote_access.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    pcie = [r for r in result.rows if r["system"] == "PCIe"]
    gmn = [r for r in result.rows if r["system"] == "GMN"]
    # Fig. 7(a): PCIe collapses with distribution (paper: up to 11.7x).
    assert pcie[-1]["normalized_runtime"] > 5.0
    assert pcie[1]["normalized_runtime"] > 2.0
    # Fig. 7(b): the GMN *improves* at 50% remote.
    assert gmn[1]["normalized_runtime"] < 1.0
    # Network latency rises with distribution while runtime does not.
    assert gmn[-1]["avg_net_latency_ns"] > gmn[0]["avg_net_latency_ns"]
