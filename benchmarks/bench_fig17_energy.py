"""Fig. 17 benchmark: network energy of the sliced topologies.

Shares the Fig. 16 sweep (the paper reports performance and energy from the
same runs) but asserts the energy claims: sFBFLY lowest, with up to ~50%
saving vs sMESH (paper: 50.7% on BP, 20.3% average).
"""

from repro.experiments import fig16_fig17_topologies


def test_fig17_energy(benchmark):
    result = benchmark.pedantic(
        fig16_fig17_topologies.run,
        kwargs={"scale": 0.25},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())

    energy = {}
    for row in result.rows:
        energy.setdefault(row["topology"], {})[row["workload"]] = row["energy_uj"]
    workloads = list(energy["smesh"])

    savings = [
        100 * (1 - energy["sfbfly"][w] / energy["smesh"][w]) for w in workloads
    ]
    # sFBFLY saves energy vs sMESH on average (paper: 20.3% avg, 50.7% max).
    assert sum(savings) / len(savings) > 10.0
    assert max(savings) > 25.0
    # Mean energy across workloads: sFBFLY is the most efficient design.
    means = {
        t: sum(energy[t][w] for w in workloads) / len(workloads) for t in energy
    }
    assert means["sfbfly"] == min(means.values())
    # The -2x variants burn more idle power but finish sooner; their total
    # energy must not blow up relative to the 1x versions (paper: they
    # *lowered* energy slightly).
    assert means["smesh-2x"] < 1.3 * means["smesh"]
