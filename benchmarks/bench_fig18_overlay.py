"""Fig. 18 benchmark: CPU host-thread performance on UMN designs."""

from repro.experiments import fig18_overlay


def test_fig18_overlay(benchmark):
    result = benchmark.pedantic(
        fig18_overlay.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    host = {}
    for row in result.rows:
        host.setdefault(row["workload"], {})[row["design"]] = row["host_us"]
    for wl in ("CG.S", "FT.S"):
        # Paper ordering: overlay > sFBFLY > sMESH (lower host time better).
        assert host[wl]["overlay"] < host[wl]["sfbfly"]
        assert host[wl]["sfbfly"] < host[wl]["smesh"]
