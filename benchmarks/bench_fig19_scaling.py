"""Fig. 19 benchmark: multi-GPU scalability (1 to 16 GPUs).

The heaviest sweep in the suite (35 full-system simulations up to
16GPU-68HMC); expect a few minutes.
"""

from repro.experiments import fig19_scaling


def test_fig19_scaling(benchmark):
    result = benchmark.pedantic(
        fig19_scaling.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    final = {r["workload"]: r["x16"] for r in result.rows}
    # All workloads scale (paper geomean 13.5 at 16 GPUs).
    geomean = 1.0
    for v in final.values():
        geomean *= v
    geomean **= 1.0 / len(final)
    assert geomean > 8.0
    # CP (compute-bound) is among the best scalers; FWT (too-small input)
    # is the worst (paper: 11.2x lowest).
    ranked = sorted(final, key=final.get)
    assert ranked[0] == "FWT"
    assert final["CP"] > 10.0
    # Speedups grow monotonically with GPU count for every workload.
    for row in result.rows:
        series = [row[f"x{n}"] for n in (1, 2, 4, 8, 16)]
        assert all(b >= a * 0.95 for a, b in zip(series, series[1:])), row
