"""Fig. 14 benchmark: runtime breakdown across all seven architectures.

This is the paper's headline sweep: every Table II workload on PCIe,
PCIe-ZC, CMN, CMN-ZC, GMN, GMN-ZC, and UMN.
"""

from repro.experiments import fig14_organizations
from repro.system.metrics import geometric_mean


def test_fig14_organizations(benchmark):
    result = benchmark.pedantic(
        fig14_organizations.run,
        kwargs={"scale": 0.25},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())

    totals = {}
    for row in result.rows:
        totals.setdefault(row["arch"], {})[row["workload"]] = row["total_us"]
    workloads = list(totals["PCIe"])

    def geo(arch):
        return geometric_mean([totals["PCIe"][w] / totals[arch][w] for w in workloads])

    # UMN is the fastest architecture on every single workload.
    for w in workloads:
        best = min(totals, key=lambda a: totals[a][w])
        assert best == "UMN", f"{w}: expected UMN fastest, got {best}"
    # Overall orderings from the paper.
    assert geo("UMN") > 4.0  # paper: 8.5x
    assert geo("CMN") > 1.3  # paper: 1.8x
    assert geo("CMN-ZC") > geo("CMN") * 0.9  # CMN-ZC at least comparable
    # GMN-ZC == PCIe-ZC exactly (the GPU network is never used).
    for w in workloads:
        assert totals["GMN-ZC"][w] == totals["PCIe-ZC"][w]
    # GMN kernel speedup vs PCIe (paper: up to 8.8x).
    kernels = {}
    for row in result.rows:
        kernels.setdefault(row["arch"], {})[row["workload"]] = row["kernel_us"]
    max_gain = max(kernels["PCIe"][w] / kernels["GMN"][w] for w in workloads)
    assert max_gain > 4.0
