"""Warm-pool + LPT scheduling benchmark: multi-experiment A/B.

`repro all --jobs N` used to pay one process-pool spawn per experiment
and submitted cache misses in FIFO order.  This benchmark runs the same
two-experiment slice (fig14 + fig16, reduced scale) both ways:

- **cold-fifo**: pool torn down and respawned per experiment,
  submission-order scheduling (the pre-planner behavior);
- **warm-lpt**: one shared pool across both experiments,
  longest-predicted-first submission (the current default).

Rows must be identical between the modes — scheduling is observational —
and the warm mode must spawn exactly one pool where the cold mode spawns
one per experiment.  The wall-clock delta is recorded (via
``REPRO_BENCH_JSON``) so the trajectory is diffable; on a 1-core
container the saving is mostly the avoided fork + worker warm-up, on a
multi-core host LPT also trims the straggler tail.
"""

import time

from repro.exec import SweepExecutor, pool_spawns, shutdown_pool
from repro.experiments import fig14_organizations, fig16_fig17_topologies

SCALE = 0.1
JOBS = 2


def _run_pair(schedule, cold):
    """Run fig14 + fig16; return (wall_s, rows, pool spawns used)."""
    shutdown_pool()
    before = pool_spawns()
    rows = []
    start = time.perf_counter()
    for experiment in (fig14_organizations, fig16_fig17_topologies):
        if cold:
            shutdown_pool()
        result = experiment.run(
            scale=SCALE, executor=SweepExecutor(jobs=JOBS, schedule=schedule)
        )
        rows.append(result.rows)
    wall = time.perf_counter() - start
    spawns = pool_spawns() - before
    shutdown_pool()
    return wall, rows, spawns


def test_sched_pool_delta(benchmark):
    cold_wall, cold_rows, cold_spawns = _run_pair("fifo", cold=True)

    def warm():
        return _run_pair("lpt", cold=False)

    warm_wall, warm_rows, warm_spawns = benchmark.pedantic(
        warm, rounds=1, iterations=1, warmup_rounds=0
    )

    # Scheduling and pool reuse are observational: identical rows.
    assert warm_rows == cold_rows
    # The warm mode shares one pool; the cold mode spawns per experiment.
    assert warm_spawns == 1
    assert cold_spawns == 2

    delta_pct = (cold_wall - warm_wall) / cold_wall * 100.0
    print()
    print(
        f"cold-fifo {cold_wall:.2f}s ({cold_spawns} pool spawns) vs "
        f"warm-lpt {warm_wall:.2f}s ({warm_spawns} pool spawn): "
        f"{delta_pct:+.1f}%"
    )
