"""Extension benchmarks: the ablations/extensions beyond the paper's figures.

- first-touch vs random page placement (the Section III-C open question);
- concurrent kernel execution (Section III future work);
- latency-vs-load curves for the candidate topologies ([46] methodology).
"""

from repro.experiments import ext_concurrent, ext_latency_load, ext_mapping


def test_ext_first_touch_mapping(benchmark):
    result = benchmark.pedantic(
        ext_mapping.run, kwargs={"scale": 0.25}, rounds=1, iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())

    rows = {(r["workload"], r["placement"]): r for r in result.rows}
    # Streaming workloads gain from locality; hops approach 1.0.
    for wl in ("SCAN", "3DFD", "SRAD"):
        assert rows[(wl, "first_touch")]["kernel_us"] < rows[(wl, "random")]["kernel_us"]
        assert rows[(wl, "first_touch")]["avg_hops"] < 1.3
        assert rows[(wl, "first_touch")]["energy_uj"] < rows[(wl, "random")]["energy_uj"]
    # The imbalanced workload pays for locality (no free lunch).
    assert (
        rows[("CG.S", "first_touch")]["kernel_us"]
        > 0.9 * rows[("CG.S", "random")]["kernel_us"]
    )


def test_ext_concurrent_kernels(benchmark):
    result = benchmark.pedantic(
        ext_concurrent.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    rows = {r["kernels"]: r for r in result.rows}
    # Underfilled grids overlap substantially.
    assert rows["CG.S+FT.S"]["overlap_speedup"] > 1.3
    assert rows["CG.S+CG.S"]["overlap_speedup"] > 1.3
    # Saturating kernels are compute-conserved: no large win, no large loss.
    assert 0.9 < rows["BP+KMN"]["overlap_speedup"] < 1.5


def test_ext_latency_load(benchmark):
    result = benchmark.pedantic(
        ext_latency_load.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    rows = {r["topology"]: r for r in result.rows}
    # Latency rises with load for every topology.
    for topo, row in rows.items():
        assert row["lat@90%"] >= row["lat@10%"], topo
    # sFBFLY's curve is the flattest among the sliced designs, and matches
    # dFBFLY under uniform traffic (identical minimal routes, Section V-B).
    assert rows["sfbfly"]["lat@90%"] < rows["smesh"]["lat@90%"]
    assert rows["sfbfly"]["lat@90%"] < rows["storus"]["lat@90%"]
    assert rows["sfbfly"]["lat@90%"] == rows["dfbfly"]["lat@90%"]
    # dDFLY saturates early: its single global channel per cluster pair is
    # the bandwidth limitation the paper calls out.
    assert rows["ddfly"]["lat@90%"] > rows["sfbfly"]["lat@90%"] * 2
