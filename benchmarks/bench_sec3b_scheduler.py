"""Section III-B benchmark: CTA assignment policy ablation."""

from repro.experiments import sec3b_scheduler
from repro.system.metrics import geometric_mean


def test_sec3b_cta_scheduler(benchmark):
    result = benchmark.pedantic(
        sec3b_scheduler.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    rows = {r["workload"]: r for r in result.rows}
    workloads = list(rows)
    # Static chunked assignment beats round-robin overall (paper: 8%).
    overall = geometric_mean(
        [rows[w]["round_robin_us"] / rows[w]["static_us"] for w in workloads]
    )
    assert overall > 1.02
    # Stealing is within 2% of static (paper: < 1% gain).
    stealing = geometric_mean(
        [rows[w]["static_us"] / rows[w]["stealing_us"] for w in workloads]
    )
    assert 0.98 < stealing < 1.05
    # The locality mechanism: chunked assignment raises L2 hit rates for
    # the stencil workloads (paper: up to +20% L2).
    assert rows["SRAD"]["l2_hit_static"] > rows["SRAD"]["l2_hit_rr"]
    assert rows["3DFD"]["l2_hit_static"] > rows["3DFD"]["l2_hit_rr"]
