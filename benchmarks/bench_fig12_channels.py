"""Fig. 12 benchmark: channel counts, dFBFLY vs sFBFLY."""

import pytest

from repro.experiments import fig12_channels


def test_fig12_channels(benchmark):
    result = benchmark.pedantic(
        fig12_channels.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    by_gpus = {r["gpus"]: r for r in result.rows}
    # Exact paper numbers for the 4- and 8-GPU systems.
    assert by_gpus[4]["dfbfly_channels"] == 48
    assert by_gpus[4]["sfbfly_channels"] == 24
    assert by_gpus[4]["saving_pct"] == pytest.approx(50.0, abs=0.1)
    assert by_gpus[8]["saving_pct"] == pytest.approx(43.0, abs=1.0)
    # Scalability: sFBFLY stays within the HMC's 8 channels longer.
    assert by_gpus[8]["max_hmc_degree_sfbfly"] <= 8 < by_gpus[8]["max_hmc_degree_dfbfly"]
