"""Extension benchmark: robustness of the headline conclusions."""

from repro.experiments import ext_sensitivity


def test_ext_sensitivity(benchmark):
    result = benchmark.pedantic(
        ext_sensitivity.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    # No 2x perturbation of SerDes latency, channel bandwidth, vault queue
    # depth, or PCIe latency may flip either headline conclusion.
    for row in result.rows:
        assert row["umn_speedup_vs_pcie"] > 1.0, row["parameter"]
        assert row["sfbfly_speedup_vs_smesh"] > 1.0, row["parameter"]
    # Halving channel bandwidth narrows the UMN margin (the win is
    # bandwidth-driven) but keeps it decisive.
    by_param = {r["parameter"]: r for r in result.rows}
    assert (
        by_param["channel bw x0.5"]["umn_speedup_vs_pcie"]
        < by_param["baseline"]["umn_speedup_vs_pcie"]
    )
