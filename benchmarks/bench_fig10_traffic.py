"""Fig. 10 benchmark: GPU-to-HMC traffic distribution (KMN vs CG.S)."""

from repro.experiments import fig10_traffic


def test_fig10_traffic(benchmark):
    result = benchmark.pedantic(
        fig10_traffic.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    rows = {
        (r["workload"], r["interleave"]): r for r in result.rows
    }
    # CG.S is far more imbalanced across HMCs than KMN (paper: ~11.7x hot
    # HMCs for CG.S vs near-uniform KMN).
    assert (
        rows[("CG.S", "line")]["hmc_traffic_max_over_min"]
        > 1.5 * rows[("KMN", "line")]["hmc_traffic_max_over_min"]
    )
    # Cache-line interleaving keeps intra-cluster traffic balanced even for
    # the imbalanced workload (Section V-A)...
    assert rows[("CG.S", "line")]["worst_intra_cluster_ratio"] < 2.0
    assert rows[("KMN", "line")]["worst_intra_cluster_ratio"] < 2.0
    # ...and the page-granularity ablation destroys that balance, showing
    # the mapping is what licenses removing intra-cluster channels.
    assert (
        rows[("KMN", "page")]["worst_intra_cluster_ratio"]
        > 2 * rows[("KMN", "line")]["worst_intra_cluster_ratio"]
    )
