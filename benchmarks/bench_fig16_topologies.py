"""Fig. 16 benchmark: sliced-topology performance comparison."""

from repro.experiments import fig16_fig17_topologies
from repro.system.metrics import geometric_mean


def test_fig16_topologies(benchmark):
    result = benchmark.pedantic(
        fig16_fig17_topologies.run,
        kwargs={"scale": 0.25},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())

    runtimes = {}
    for row in result.rows:
        runtimes.setdefault(row["topology"], {})[row["workload"]] = row["kernel_us"]
    workloads = list(runtimes["smesh"])

    def geo_vs(topo, base):
        return geometric_mean(
            [runtimes[base][w] / runtimes[topo][w] for w in workloads]
        )

    # The -2x variants beat their single-channel versions.
    assert geo_vs("smesh-2x", "smesh") > 1.0
    assert geo_vs("storus-2x", "storus") > 1.0
    # sFBFLY is better than or comparable to everything (within 10% of the
    # best, and clearly ahead of sMESH), per Section VI-B2.
    assert geo_vs("sfbfly", "smesh") > 1.2
    best = max(runtimes, key=lambda t: geo_vs(t, "smesh"))
    assert geo_vs("sfbfly", "smesh") > 0.9 * geo_vs(best, "smesh")
    # sFBFLY has the lowest average hop count of the sliced designs.
    hops = {}
    for row in result.rows:
        hops.setdefault(row["topology"], []).append(row["avg_hops"])
    mean_hops = {t: sum(v) / len(v) for t, v in hops.items()}
    assert mean_hops["sfbfly"] == min(mean_hops.values())
