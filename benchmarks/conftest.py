"""Benchmark harness configuration.

Each ``bench_*.py``/``test_fig*`` wraps one paper experiment: the benchmark
measures the wall-clock of the full sweep, prints the reproduced
table/figure series (run pytest with ``-s`` to see it), and asserts the
qualitative shape the paper reports, so the suite doubles as a regression
gate for the reproduction.

Setting ``REPRO_BENCH_JSON=DIR`` turns the suite into a recording harness:
every benchmark test that passes writes a ``BENCH_<experiment>.json``
wall-clock record into DIR (see :mod:`repro.exec.bench`), so CI and perf
PRs can diff sweep times across commits::

    REPRO_BENCH_JSON=bench-out REPRO_JOBS=2 pytest benchmarks/bench_fig14_organizations.py
"""

import os
import time

import pytest

collect_ignore_glob: list = []


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    out_dir = os.environ.get("REPRO_BENCH_JSON", "").strip()
    if not out_dir:
        yield
        return
    start = time.perf_counter()
    outcome = yield
    wall = time.perf_counter() - start
    if outcome.excinfo is None:
        from repro.exec import bench_name_for_module, jobs_from_env, write_bench

        write_bench(
            bench_name_for_module(item.path.stem),
            wall,
            directory=out_dir,
            jobs=jobs_from_env(default=1),
        )
