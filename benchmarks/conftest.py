"""Benchmark harness configuration.

Each ``bench_*.py``/``test_fig*`` wraps one paper experiment: the benchmark
measures the wall-clock of the full sweep, prints the reproduced
table/figure series (run pytest with ``-s`` to see it), and asserts the
qualitative shape the paper reports, so the suite doubles as a regression
gate for the reproduction.
"""

collect_ignore_glob: list = []
