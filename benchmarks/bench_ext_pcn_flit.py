"""Extension benchmarks: NVLink-style PCN comparison and flit validation."""

from repro.experiments import ext_flit_validation, ext_pcn


def test_ext_pcn_vs_memory_networks(benchmark):
    result = benchmark.pedantic(ext_pcn.run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result.render())

    totals = {}
    for row in result.rows:
        totals.setdefault(row["workload"], {})[row["arch"]] = row["total_us"]
    for wl, per_arch in totals.items():
        # NVLink beats PCIe everywhere (the point of the link upgrade)...
        assert per_arch["NVLink"] < per_arch["PCIe"], wl
        # ...but UMN beats NVLink everywhere (the point of the paper).
        assert per_arch["UMN"] < per_arch["NVLink"], wl
    # GMN's kernel is faster than NVLink's even when its memcpy is not.
    kernels = {}
    for row in result.rows:
        kernels.setdefault(row["workload"], {})[row["arch"]] = row["kernel_us"]
    faster = sum(1 for wl in kernels if kernels[wl]["GMN"] <= kernels[wl]["NVLink"])
    assert faster >= len(kernels) - 1


def test_ext_flit_validation(benchmark):
    result = benchmark.pedantic(
        ext_flit_validation.run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())

    by_point = {(r["study"], r["point"]): r for r in result.rows}
    # Models agree at low load (within ~25%).
    low = by_point[("latency-load", "10% load")]
    assert 0.7 < low["ratio"] < 1.3
    # Backpressure raises flit-level latency monotonically with load.
    ratios = [
        by_point[("latency-load", f"{l:.0%} load")]["ratio"] for l in (0.1, 0.4, 0.8)
    ]
    assert ratios == sorted(ratios)
    # Full-system runs stay within a small constant factor.
    for row in result.rows:
        if row["study"] == "full-system":
            assert 1.0 <= row["ratio"] < 4.0
