#!/usr/bin/env python
"""Multi-GPU scaling study (the Fig. 19 experiment, configurable).

Runs a workload on the unified memory network with 1..N GPUs and prints
kernel-execution speedups, plus where the time goes at the largest scale.

Usage::

    python examples/scaling_study.py [workload] [scale] [max_gpus]
"""

import sys

from repro import SystemConfig, get_spec, get_workload, run_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "SRAD"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    max_gpus = int(sys.argv[3]) if len(sys.argv) > 3 else 8

    counts = [n for n in (1, 2, 4, 8, 16) if n <= max_gpus]
    print(f"scaling {name} (scale={scale}) on UMN/sFBFLY over {counts} GPUs")
    header = (
        f"{'gpus':>5s} {'kernel':>11s} {'speedup':>8s} {'efficiency':>11s} "
        f"{'L2 hit':>7s} {'net lat':>9s}"
    )
    print(header)
    print("-" * len(header))
    base = None
    for n in counts:
        cfg = SystemConfig(num_gpus=n)
        r = run_workload(get_spec("UMN"), get_workload(name, scale), cfg=cfg)
        if base is None:
            base = r.kernel_ps
        speedup = base / r.kernel_ps
        print(
            f"{n:5d} {r.kernel_ps / 1e6:10.2f}us {speedup:7.2f}x "
            f"{100 * speedup / n:9.1f}% {r.l2_hit_rate:7.2f} "
            f"{r.avg_net_latency_ps / 1e3:7.1f}ns"
        )
    print(
        "\nEfficiency falls when the input is too small to keep all SMs "
        "busy (the paper's FWT case) or when per-phase memory latency "
        "stops shrinking with added GPUs."
    )


if __name__ == "__main__":
    main()
