#!/usr/bin/env python
"""Explore memory-network topologies: geometry and performance.

Builds every topology the paper evaluates (Fig. 11 / Fig. 16), prints its
structural properties (channels, router degrees, GPU-to-HMC distances),
then runs a memory-bound workload over each on the GPU memory network and
reports runtime, hop count, and network energy.

Usage::

    python examples/multi_gpu_topologies.py [workload] [scale]
"""

import sys

from repro import get_spec, get_workload, run_workload
from repro.network.metrics import topology_metrics
from repro.network.topologies import build_topology

TOPOLOGIES = ["ddfly", "dfbfly", "sfbfly", "smesh", "storus", "smesh-2x", "storus-2x"]


def describe(name: str, num_gpus: int = 4) -> None:
    topo = build_topology(name, num_gpus=num_gpus)
    m = topology_metrics(topo)
    degrees = [topo.router_degree(r) for r in range(topo.num_routers)]
    print(
        f"{name:10s} channels={m.bidirectional_channels:3d} "
        f"max degree={max(degrees)}/8 "
        f"GPU->HMC hops: max={m.max_gpu_to_hmc_hops} "
        f"avg={m.avg_gpu_to_hmc_hops:.2f}  "
        f"bisection={m.bisection_gbps:5.0f} GB/s"
    )


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "BP"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    print("=== Topology geometry (4 GPUs, 16 HMCs) ===")
    for name in TOPOLOGIES:
        describe(name)

    print(f"\n=== {workload} on the GPU memory network (GMN) ===")
    header = f"{'topology':10s} {'kernel':>10s} {'avg hops':>9s} {'energy':>10s}"
    print(header)
    print("-" * len(header))
    for name in TOPOLOGIES:
        spec = get_spec("GMN").with_(topology=name)
        r = run_workload(spec, get_workload(workload, scale))
        print(
            f"{name:10s} {r.kernel_ps / 1e6:9.2f}us {r.avg_hops:9.2f} "
            f"{r.energy.total_uj:8.1f}uJ"
        )
    print("\nsFBFLY removes intra-cluster channels (half the channels of "
          "dFBFLY) yet keeps the same minimal GPU->HMC routes — Section V-B.")


if __name__ == "__main__":
    main()
