#!/usr/bin/env python
"""Trace-driven interconnect comparison.

Record the memory trace of a workload once (past the GPU caches), then
replay the identical request stream open-loop on every architecture — the
classic methodology for comparing memory systems on *exactly* the same
load, independent of execution-side feedback.

Usage::

    python examples/trace_replay.py [workload] [scale]
"""

import sys

from repro import SystemConfig, get_spec
from repro.system.builder import MultiGPUSystem
from repro.trace import TraceRecorder, replay_trace
from repro.workloads import get_workload


def record(workload: str, scale: float, cfg: SystemConfig) -> TraceRecorder:
    system = MultiGPUSystem(get_spec("GMN"), cfg)
    system.install_page_table()
    recorder = TraceRecorder()
    recorder.attach(system)
    wl = get_workload(workload, scale)
    system.vgpu.launch_sequence(wl.kernels)
    system.sim.run()
    return recorder


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "BFS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    cfg = SystemConfig()

    recorder = record(workload, scale, cfg)
    reads = sum(1 for e in recorder.events if e.type == "read")
    print(f"recorded {recorder.num_events} requests from {workload} "
          f"({reads} reads) on GMN")

    print(f"\nreplaying the identical trace on each interconnect:")
    header = f"{'arch':8s} {'avg latency':>12s} {'makespan':>10s}"
    print(header)
    print("-" * len(header))
    for arch in ("PCIe", "NVLink", "CMN", "GMN", "UMN"):
        result = replay_trace(recorder.events, get_spec(arch), cfg)
        print(
            f"{arch:8s} {result.avg_latency_ps / 1e3:10.1f}ns "
            f"{result.makespan_ps / 1e6:8.2f}us"
        )
    print("\nSame requests, same timestamps — only the interconnect differs.")


if __name__ == "__main__":
    main()
