#!/usr/bin/env python
"""Quickstart: run one workload on a PCIe multi-GPU system and on the
unified memory network, and compare.

This exercises the three core pieces of the library:

- the Table II workload suite (``repro.workloads``),
- the Table III architectures (``repro.system``),
- the experiment runner (``repro.run_workload``).

Usage::

    python examples/quickstart.py [workload] [scale]
"""

import sys

from repro import get_spec, get_workload, run_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "KMN"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    workload = get_workload(name, scale)
    print(f"workload: {workload.name} — {workload.description}")
    print(f"  {workload.num_ctas} CTAs, {len(workload.kernels)} kernel(s), "
          f"h2d={workload.h2d_bytes >> 10} KiB, d2h={workload.d2h_bytes >> 10} KiB")
    print()

    results = {}
    for arch in ("PCIe", "UMN"):
        results[arch] = run_workload(get_spec(arch), get_workload(name, scale))

    header = f"{'arch':8s} {'kernel':>10s} {'memcpy':>10s} {'total':>10s}"
    print(header)
    print("-" * len(header))
    for arch, r in results.items():
        print(
            f"{arch:8s} {r.kernel_ps / 1e6:9.2f}us {r.memcpy_ps / 1e6:9.2f}us "
            f"{(r.kernel_ps + r.memcpy_ps) / 1e6:9.2f}us"
        )
    speedup = (
        (results["PCIe"].kernel_ps + results["PCIe"].memcpy_ps)
        / (results["UMN"].kernel_ps + results["UMN"].memcpy_ps)
    )
    print(f"\nUMN speedup over PCIe: {speedup:.1f}x")
    print("(the unified memory network removes both the memcpy and the "
          "remote-access bottleneck — Section IV-B3 of the paper)")


if __name__ == "__main__":
    main()
