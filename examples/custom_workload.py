#!/usr/bin/env python
"""Write your own kernel against the SKE public API and run it unmodified
on every multi-GPU architecture.

The point of scalable kernel execution (Section III) is that a kernel
written for ONE GPU runs across N GPUs with no source changes: you describe
a grid of CTAs and what each CTA does; the SKE runtime splits the grid and
the shared page table makes every GPU see the same memory.

This example builds a tiled matrix-vector multiply (y = A @ x): each CTA
owns a block of rows, re-reads the shared vector x, streams its rows of A,
and writes its slice of y.
"""

from repro import TABLE_III, get_spec, run_workload
from repro.core.kernel import Access, Kernel, Phase
from repro.mem import AccessType
from repro.workloads import KernelStep, Region, Workload

LINE = 128

ROWS_PER_CTA = 8
NUM_CTAS = 192
COLS_LINES = 16  # matrix row length in cache lines

A = Region(base=0x10_0000_0000, lines=NUM_CTAS * ROWS_PER_CTA * COLS_LINES)
X = Region(base=0x20_0000_0000, lines=COLS_LINES)
Y = Region(base=0x30_0000_0000, lines=NUM_CTAS * ROWS_PER_CTA // 16 + 1)


def matvec_cta(cta: int):
    """One CTA: for each of its rows, read x (shared) + the row, mac it."""
    phases = []
    for row in range(ROWS_PER_CTA):
        row_base = (cta * ROWS_PER_CTA + row) * COLS_LINES
        accesses = [
            Access(X.line_addr(i), LINE, AccessType.READ) for i in range(COLS_LINES)
        ]
        accesses += [
            Access(A.line_addr(row_base + i), LINE, AccessType.READ)
            for i in range(COLS_LINES)
        ]
        accesses.append(
            Access(Y.line_addr((cta * ROWS_PER_CTA + row) // 16), LINE, AccessType.WRITE)
        )
        # ~2 fused multiply-adds per element at 1.4 GHz.
        phases.append(Phase(compute_ps=COLS_LINES * 32 * 2 * 714, accesses=tuple(accesses)))
    return phases


def main() -> None:
    kernel = Kernel("matvec", grid_dim=(NUM_CTAS,), cta_program=matvec_cta)
    workload = Workload(
        name="matvec",
        steps=[KernelStep(kernel)],
        h2d_bytes=A.bytes + X.bytes,
        d2h_bytes=Y.bytes,
        description="tiled y = A @ x",
    )

    print(f"custom kernel: {kernel.name}, {kernel.num_ctas} CTAs, "
          f"A={A.bytes >> 20} MiB")
    header = f"{'arch':8s} {'kernel':>10s} {'memcpy':>10s} {'kernel+memcpy':>14s}"
    print(header)
    print("-" * len(header))
    for arch in TABLE_III:
        r = run_workload(get_spec(arch), workload)
        print(
            f"{arch:8s} {r.kernel_ps / 1e6:9.2f}us {r.memcpy_ps / 1e6:9.2f}us "
            f"{(r.kernel_ps + r.memcpy_ps) / 1e6:13.2f}us"
        )
    print("\nThe same kernel object ran on 1 PCIe switch, 2 memory-network "
          "variants, and the unified memory network — zero source changes.")


if __name__ == "__main__":
    main()
